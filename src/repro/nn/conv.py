"""Quantised 2-D convolution and pooling (the CNN workload).

The introduction motivates NACU with CGRAs that "morph into different ANN
topologies like CNN or LSTM". Convolutions on such fabrics are MAC loops
— exactly :func:`repro.nn.quantized.quantized_matmul` over im2col patches
— followed by the NACU non-linearity.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigError
from repro.fixedpoint import FxArray, QFormat
from repro.nn.quantized import quantized_matmul


def _output_dims(images: np.ndarray, kernel: int, stride: int) -> Tuple[int, int]:
    if images.ndim != 4:
        raise ConfigError("im2col expects (batch, height, width, channels)")
    height, width = images.shape[1:3]
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ConfigError("kernel larger than the image")
    return out_h, out_w


def im2col(images: np.ndarray, kernel: int, stride: int = 1) -> Tuple[np.ndarray, int, int]:
    """Extract sliding patches: (batch, h, w, c) -> (batch*oh*ow, k*k*c).

    Returns the patch matrix plus the output spatial dimensions. Patches
    are gathered through a strided window view — pure data movement, so
    the matrix is element-identical to :func:`im2col_reference` (pinned
    in ``tests/nn/test_conv_cnn.py``), one python-level pass instead of
    an ``oh * ow`` slice loop.
    """
    batch = images.shape[0]
    out_h, out_w = _output_dims(images, kernel, stride)
    # (batch, h-k+1, w-k+1, channels, kernel_i, kernel_j): the window
    # axes land last, so reorder to the reference's (ki, kj, c) patch
    # layout before flattening.
    windows = np.lib.stride_tricks.sliding_window_view(
        images, (kernel, kernel), axis=(1, 2)
    )[:, ::stride, ::stride]
    patches = windows.transpose(0, 1, 2, 4, 5, 3).reshape(
        batch * out_h * out_w, kernel * kernel * images.shape[3]
    )
    return patches, out_h, out_w


def im2col_reference(images: np.ndarray, kernel: int, stride: int = 1) -> Tuple[np.ndarray, int, int]:
    """The direct slice-loop im2col — the layout :func:`im2col` must match."""
    batch = images.shape[0]
    out_h, out_w = _output_dims(images, kernel, stride)
    patches = np.empty((batch, out_h, out_w, kernel * kernel * images.shape[3]),
                       dtype=images.dtype)
    for i in range(out_h):
        for j in range(out_w):
            window = images[
                :, i * stride: i * stride + kernel,
                j * stride: j * stride + kernel, :,
            ]
            patches[:, i, j, :] = window.reshape(batch, -1)
    return patches.reshape(batch * out_h * out_w, -1), out_h, out_w


class QuantizedConv2d:
    """A conv layer computed with exact-integer MAC accumulation."""

    def __init__(self, filters: np.ndarray, bias: np.ndarray,
                 fmt: QFormat = None, stride: int = 1):
        # filters: (kernel, kernel, in_channels, out_channels)
        if filters.ndim != 4 or filters.shape[0] != filters.shape[1]:
            raise ConfigError("filters must be (k, k, c_in, c_out)")
        self.fmt = fmt or QFormat(4, 11)
        self.kernel = filters.shape[0]
        self.out_channels = filters.shape[3]
        self.stride = stride
        flat = filters.reshape(-1, self.out_channels)
        self.weights = FxArray.from_float(flat, self.fmt)
        self.bias = FxArray.from_float(np.asarray(bias, dtype=np.float64), self.fmt)

    def forward(self, images: FxArray) -> FxArray:
        """(batch, h, w, c_in) -> (batch, oh, ow, c_out), fixed point."""
        raw_images = images.raw
        batch = raw_images.shape[0]
        patches, out_h, out_w = im2col(raw_images, self.kernel, self.stride)
        patch_fx = FxArray(patches, images.fmt)
        z = quantized_matmul(patch_fx, self.weights, self.fmt)
        z = FxArray.from_float(
            z.to_float() + self.bias.to_float(), self.fmt
        )
        return FxArray(
            z.raw.reshape(batch, out_h, out_w, self.out_channels), self.fmt
        )


def max_pool2d(x: FxArray, size: int = 2) -> FxArray:
    """Non-overlapping max pooling — exact in fixed point (integer max)."""
    raw = x.raw
    if raw.ndim != 4:
        raise ConfigError("max_pool2d expects (batch, height, width, channels)")
    batch, height, width, channels = raw.shape
    out_h, out_w = height // size, width // size
    trimmed = raw[:, : out_h * size, : out_w * size, :]
    blocks = trimmed.reshape(batch, out_h, size, out_w, size, channels)
    return FxArray(blocks.max(axis=(2, 4)), x.fmt)


def global_average_pool(x: FxArray) -> FxArray:
    """Spatial mean per channel (rounded once, like a MAC + shift)."""
    raw = x.raw
    batch, height, width, channels = raw.shape
    total = raw.reshape(batch, -1, channels).sum(axis=1)
    count = height * width
    averaged = np.round(total / count).astype(np.int64)
    return FxArray(averaged, x.fmt)


def oriented_edge_filters(fmt: QFormat = None) -> Tuple[np.ndarray, np.ndarray]:
    """A fixed 3x3 filter bank: horizontal/vertical/diagonal edges + blur.

    Hand-designed feature extractors (Sobel-style), standing in for a
    trained convolutional front end — the dense head on top is trained.
    """
    sobel_h = np.array([[1, 2, 1], [0, 0, 0], [-1, -2, -1]], dtype=np.float64) / 4
    sobel_v = sobel_h.T
    diag = np.array([[2, 1, 0], [1, 0, -1], [0, -1, -2]], dtype=np.float64) / 4
    blur = np.ones((3, 3)) / 9.0
    bank = np.stack([sobel_h, sobel_v, diag, blur], axis=-1)  # (3,3,4)
    filters = bank[:, :, np.newaxis, :]  # single input channel
    bias = np.zeros(4)
    return filters, bias
