"""A small CNN: fixed conv front end, NACU activations, trained head.

Pipeline: quantised 3x3 conv (Sobel-style fixed filter bank) -> sigma
squashing on the activation provider -> max pooling -> global average
pooling -> a trained dense/softmax head. Convolution weights are fixed
feature extractors; only the head is trained (in float), then the whole
inference path runs in fixed point.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.fixedpoint import FxArray, QFormat
from repro.funcs import reference
from repro.nn.activations import ActivationProvider, FloatActivations
from repro.telemetry import collector as _telemetry
from repro.nn.conv import (
    QuantizedConv2d,
    global_average_pool,
    max_pool2d,
    oriented_edge_filters,
)
from repro.nn.mlp import FixedPointMlp, Mlp


class SmallCnn:
    """Conv features + trained classifier head, all through one provider."""

    def __init__(
        self,
        n_classes: int = 3,
        provider: Optional[ActivationProvider] = None,
        fmt: Optional[QFormat] = None,
        head_hidden: int = 16,
        seed: int = 0,
    ):
        self.fmt = fmt or QFormat(4, 11)
        self.provider = provider or FloatActivations()
        filters, bias = oriented_edge_filters()
        self.conv = QuantizedConv2d(filters, bias, fmt=self.fmt)
        self.n_features = filters.shape[-1]
        self.head = Mlp([self.n_features, head_hidden, n_classes], seed=seed)
        self._fixed_head: Optional[FixedPointMlp] = None

    # ------------------------------------------------------------------
    # Feature path (fixed point end to end)
    # ------------------------------------------------------------------
    def features(self, images: np.ndarray) -> np.ndarray:
        """Pooled conv features of (n, h, w, 1) images in [0, 1].

        The edge-magnitude response ``tanh(2*|conv|)`` (abs is wiring, the
        doubling a shift, the squash the NACU tanh) is orientation-
        discriminative where a signed squash would cancel to 0.5.

        With an engine-backed provider in this CNN's format, the whole
        (n, h, w, c) activation volume runs through the batch engine in
        one fixed-point pass (bit-identical to the float round-trip).
        """
        fx = FxArray.from_float(np.asarray(images, dtype=np.float64), self.fmt)
        conv_out = self.conv.forward(fx)
        magnitude = 2.0 * np.abs(conv_out.to_float())
        engine = getattr(self.provider, "engine", None)
        if engine is not None and engine.io_fmt == self.fmt:
            squashed_fx = engine.tanh_fx(FxArray.from_float(magnitude, self.fmt))
        else:
            squashed_fx = FxArray.from_float(self.provider.tanh(magnitude), self.fmt)
        tel = _telemetry.resolve(
            engine.collector if engine is not None else None
        )
        if tel is not None:
            tel.record_error(
                "nn.cnn.conv.tanh", squashed_fx.to_float(),
                reference.tanh(magnitude),
            )
        pooled = max_pool2d(squashed_fx, size=2)
        return global_average_pool(pooled).to_float()

    # ------------------------------------------------------------------
    # Training / inference
    # ------------------------------------------------------------------
    def fit_head(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        epochs: int = 300,
        learning_rate: float = 0.5,
    ) -> float:
        """Train the dense head on the (fixed-point) features; float SGD."""
        feats = self.features(images)
        loss = self.head.train(feats, labels, epochs, learning_rate)
        self._fixed_head = FixedPointMlp(self.head, self.provider, fmt=self.fmt)
        return loss

    def forward(self, images: np.ndarray) -> np.ndarray:
        """Class probabilities, features and head both fixed point."""
        if self._fixed_head is None:
            raise RuntimeError("fit_head() before forward()")
        return self._fixed_head.forward(self.features(images))

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Predicted class indices."""
        return np.argmax(self.forward(images), axis=-1)

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy in [0, 1]."""
        return float(np.mean(self.predict(images) == np.asarray(labels)))
