"""Training for the LSTM workload: BPTT on a binary sequence task.

Completes the LSTM story the same way the MLP's is told: train in
float64, deploy through NACU. The classifier is an
:class:`~repro.nn.lstm.LstmCell` plus a logistic readout on the final
hidden state, trained with full backpropagation through time.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.funcs import reference
from repro.nn.activations import ActivationProvider, FloatActivations
from repro.nn.lstm import LstmCell


class LstmClassifier:
    """Binary sequence classifier: LSTM cell + logistic readout."""

    def __init__(self, n_inputs: int = 1, n_hidden: int = 8, seed: int = 0):
        self.cell = LstmCell(n_inputs, n_hidden, seed=seed)
        rng = np.random.default_rng(seed + 1)
        self.readout_w = rng.normal(scale=1.0 / np.sqrt(n_hidden), size=n_hidden)
        self.readout_b = 0.0

    # ------------------------------------------------------------------
    # Inference (provider-swappable)
    # ------------------------------------------------------------------
    def scores(self, sequences: np.ndarray,
               provider: Optional[ActivationProvider] = None) -> np.ndarray:
        """Pre-sigmoid readout scores for a batch of sequences."""
        hidden = self.cell.run(sequences, provider or FloatActivations())
        return hidden @ self.readout_w + self.readout_b

    def predict(self, sequences: np.ndarray,
                provider: Optional[ActivationProvider] = None) -> np.ndarray:
        """Predicted labels in {0, 1}."""
        return (self.scores(sequences, provider) > 0).astype(np.int64)

    def accuracy(self, sequences: np.ndarray, labels: np.ndarray,
                 provider: Optional[ActivationProvider] = None) -> float:
        """Classification accuracy in [0, 1]."""
        return float(np.mean(self.predict(sequences, provider) == labels))

    # ------------------------------------------------------------------
    # Training (float64 BPTT)
    # ------------------------------------------------------------------
    def train(
        self,
        sequences: np.ndarray,
        labels: np.ndarray,
        epochs: int = 60,
        learning_rate: float = 0.5,
    ) -> float:
        """Full-batch BPTT with binary cross-entropy; returns final loss."""
        sequences = np.asarray(sequences, dtype=np.float64)
        targets = np.asarray(labels, dtype=np.float64)
        batch, length, _ = sequences.shape
        n = self.cell.n_hidden
        loss = float("nan")
        for _ in range(epochs):
            # ---- forward, caching per-step tensors -----------------------
            h = np.zeros((batch, n))
            c = np.zeros((batch, n))
            cache = []
            for t in range(length):
                x_t = sequences[:, t, :]
                z = x_t @ self.cell.w_x + h @ self.cell.w_h + self.cell.bias
                i = reference.sigmoid(z[:, 0:n])
                f = reference.sigmoid(z[:, n:2 * n])
                g = reference.tanh(z[:, 2 * n:3 * n])
                o = reference.sigmoid(z[:, 3 * n:4 * n])
                c_new = f * c + i * g
                tanh_c = reference.tanh(c_new)
                h_new = o * tanh_c
                cache.append((x_t, h, c, i, f, g, o, c_new, tanh_c))
                h, c = h_new, c_new
            score = h @ self.readout_w + self.readout_b
            prob = reference.sigmoid(score)
            loss = float(
                -np.mean(
                    targets * np.log(prob + 1e-12)
                    + (1 - targets) * np.log(1 - prob + 1e-12)
                )
            )
            # ---- backward ------------------------------------------------
            d_score = (prob - targets) / batch
            grad_rw = h.T @ d_score
            grad_rb = float(np.sum(d_score))
            dh = np.outer(d_score, self.readout_w)
            dc = np.zeros_like(dh)
            grad_wx = np.zeros_like(self.cell.w_x)
            grad_wh = np.zeros_like(self.cell.w_h)
            grad_b = np.zeros_like(self.cell.bias)
            for t in range(length - 1, -1, -1):
                x_t, h_prev, c_prev, i, f, g, o, c_new, tanh_c = cache[t]
                dc = dc + dh * o * (1.0 - tanh_c ** 2)
                d_o = dh * tanh_c * o * (1 - o)
                d_i = dc * g * i * (1 - i)
                d_f = dc * c_prev * f * (1 - f)
                d_g = dc * i * (1 - g ** 2)
                dz = np.concatenate([d_i, d_f, d_g, d_o], axis=1)
                grad_wx += x_t.T @ dz
                grad_wh += h_prev.T @ dz
                grad_b += dz.sum(axis=0)
                dh = dz @ self.cell.w_h.T
                dc = dc * f
            # ---- update ---------------------------------------------------
            self.cell.w_x -= learning_rate * grad_wx
            self.cell.w_h -= learning_rate * grad_wh
            self.cell.bias -= learning_rate * grad_b
            self.readout_w -= learning_rate * grad_rw
            self.readout_b -= learning_rate * grad_rb
        return loss
