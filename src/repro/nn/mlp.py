"""A small MLP: trained in float, deployed through NACU in fixed point.

This is the paper's headline workload shape: dense layers accumulated on
MAC hardware, a sigma/tanh non-linearity per hidden layer, and a softmax
classifier at the end (Section IV.B: "Most DNNs classify the input in the
last layer based on the softmax function").
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.fixedpoint import FxArray, QFormat
from repro.funcs import reference
from repro.nn.activations import ActivationProvider, FloatActivations
from repro.nn.quantized import quantize_parameters, quantized_matmul
from repro.telemetry import collector as _telemetry


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Label indices to one-hot rows."""
    out = np.zeros((len(labels), n_classes))
    out[np.arange(len(labels)), labels] = 1.0
    return out


class Mlp:
    """Fully-connected network with sigma or tanh hidden layers."""

    def __init__(self, layer_sizes: Sequence[int], hidden: str = "sigmoid", seed: int = 0):
        if len(layer_sizes) < 2:
            raise ConfigError("an MLP needs at least input and output sizes")
        if hidden not in ("sigmoid", "tanh"):
            raise ConfigError(f"unsupported hidden activation {hidden!r}")
        self.layer_sizes = list(layer_sizes)
        self.hidden = hidden
        rng = np.random.default_rng(seed)
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            scale = np.sqrt(2.0 / (fan_in + fan_out))
            self.weights.append(rng.normal(scale=scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

    # ------------------------------------------------------------------
    # Float forward/training
    # ------------------------------------------------------------------
    def _activate(self, z: np.ndarray, provider: ActivationProvider) -> np.ndarray:
        return provider.sigmoid(z) if self.hidden == "sigmoid" else provider.tanh(z)

    def _activate_grad(self, a: np.ndarray) -> np.ndarray:
        return a * (1.0 - a) if self.hidden == "sigmoid" else 1.0 - a ** 2

    def forward(self, x: np.ndarray, provider: ActivationProvider = None) -> np.ndarray:
        """Class probabilities for a batch of rows."""
        provider = provider or FloatActivations()
        a = np.asarray(x, dtype=np.float64)
        for w, b in zip(self.weights[:-1], self.biases[:-1]):
            a = self._activate(a @ w + b, provider)
        logits = a @ self.weights[-1] + self.biases[-1]
        return provider.softmax(logits)

    def train(
        self,
        x: np.ndarray,
        labels: np.ndarray,
        epochs: int = 200,
        learning_rate: float = 0.5,
    ) -> float:
        """Full-batch softmax cross-entropy SGD; returns final loss."""
        x = np.asarray(x, dtype=np.float64)
        targets = one_hot(labels, self.layer_sizes[-1])
        loss = float("nan")
        for _ in range(epochs):
            # Forward, keeping the per-layer activations for backprop.
            activations = [x]
            for w, b in zip(self.weights[:-1], self.biases[:-1]):
                activations.append(
                    reference.sigmoid(activations[-1] @ w + b)
                    if self.hidden == "sigmoid"
                    else reference.tanh(activations[-1] @ w + b)
                )
            logits = activations[-1] @ self.weights[-1] + self.biases[-1]
            probs = reference.softmax_normalised(logits, axis=-1)
            loss = float(
                -np.mean(np.sum(targets * np.log(probs + 1e-12), axis=1))
            )
            # Backward.
            delta = (probs - targets) / len(x)
            for layer in range(len(self.weights) - 1, -1, -1):
                a_prev = activations[layer]
                self.weights[layer] -= learning_rate * (a_prev.T @ delta)
                self.biases[layer] -= learning_rate * np.sum(delta, axis=0)
                if layer > 0:
                    delta = (delta @ self.weights[layer].T) * self._activate_grad(
                        activations[layer]
                    )
        return loss

    def predict(self, x: np.ndarray, provider: ActivationProvider = None) -> np.ndarray:
        """Predicted class indices."""
        return np.argmax(self.forward(x, provider), axis=-1)

    def accuracy(self, x: np.ndarray, labels: np.ndarray,
                 provider: ActivationProvider = None) -> float:
        """Classification accuracy in [0, 1]."""
        return float(np.mean(self.predict(x, provider) == np.asarray(labels)))


class FixedPointMlp:
    """The trained MLP deployed on fixed-point MACs + a NACU.

    Weights/biases are quantised to the NACU I/O format; every matmul
    accumulates exactly in integers and rounds once (the MAC mode);
    every non-linearity goes through the provided activation hardware.

    When the provider is backed by a :class:`~repro.engine.BatchEngine`
    whose I/O format matches ``fmt`` (e.g. ``NacuActivations`` or the
    engine itself), activations stay in raw fixed point between layers —
    the same bits without the float round-trip each layer boundary.
    """

    def __init__(self, mlp: Mlp, provider: ActivationProvider, fmt: QFormat = None):
        self.mlp = mlp
        self.provider = provider
        self.fmt = fmt or QFormat(4, 11)
        self.weights = quantize_parameters(mlp.weights, self.fmt)
        self.biases = quantize_parameters(mlp.biases, self.fmt)

    def _engine(self):
        """The provider's batch engine, if its I/O format matches ours.

        Format equality makes the fixed-point path bit-identical to the
        float round-trip (``fmt`` values are exact in float64, so the
        re-quantise on either side of the provider call is lossless).
        """
        engine = getattr(self.provider, "engine", None)
        if engine is not None and engine.io_fmt == self.fmt:
            return engine
        return None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities, computed end-to-end in fixed point.

        With telemetry enabled the float64 reference network runs
        alongside and each layer's quantised activations are folded into
        the collector's per-layer error stats (``nn.mlp.*``) — the
        Section VI error-accumulation view, for any forward pass.
        """
        engine = self._engine()
        tel = _telemetry.resolve(
            engine.collector if engine is not None else None
        )
        a = FxArray.from_float(np.asarray(x, dtype=np.float64), self.fmt)
        a_ref = np.asarray(x, dtype=np.float64) if tel is not None else None
        for index, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = quantized_matmul(a, w, self.fmt)
            z = FxArray.from_float(z.to_float() + b.to_float(), self.fmt)
            if tel is not None:
                z_ref = a_ref @ self.mlp.weights[index] + self.mlp.biases[index]
            if index < len(self.weights) - 1:
                if engine is not None:
                    a = (
                        engine.sigmoid_fx(z)
                        if self.mlp.hidden == "sigmoid"
                        else engine.tanh_fx(z)
                    )
                else:
                    hidden = (
                        self.provider.sigmoid(z.to_float())
                        if self.mlp.hidden == "sigmoid"
                        else self.provider.tanh(z.to_float())
                    )
                    a = FxArray.from_float(hidden, self.fmt)
                if tel is not None:
                    a_ref = (
                        reference.sigmoid(z_ref)
                        if self.mlp.hidden == "sigmoid"
                        else reference.tanh(z_ref)
                    )
                    tel.record_error(
                        f"nn.mlp.layer{index}.{self.mlp.hidden}",
                        a.to_float(), a_ref,
                    )
            else:
                if engine is not None:
                    probs = engine.softmax_fx(z).to_float()
                else:
                    probs = self.provider.softmax(z.to_float())
                if tel is not None:
                    tel.record_error(
                        "nn.mlp.softmax",
                        probs,
                        reference.softmax_normalised(z_ref, axis=-1),
                    )
                return probs
        raise ConfigError("unreachable: MLP must have at least one layer")

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class indices."""
        return np.argmax(self.forward(x), axis=-1)

    def accuracy(self, x: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy in [0, 1]."""
        return float(np.mean(self.predict(x) == np.asarray(labels)))
