"""Adaptive-exponential integrate-and-fire neuron (the SNN workload).

The paper's introduction motivates the exponential with "biologically
plausible integrate-and-fire neurons using differential equations ...
whose numerical solutions often involve these non-linearities". The AdEx
model's upstroke term is ``Delta_T * exp((V - V_T)/Delta_T)``.

Substitution note: NACU's exponential path is specified for non-positive
arguments (Section IV.B), so this model clamps the exponent at zero and
declares a spike once the membrane passes the cutoff — the standard
numerical guard for AdEx (the unclamped exponent diverges within one
Euler step anyway). Both the float and the NACU runs use the identical
clamped model, so measured differences isolate the arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.funcs import reference


@dataclass
class AdExParameters:
    """Dimensionless AdEx constants (voltages in units of Delta_T)."""

    tau_m: float = 10.0  # membrane time constant (steps)
    tau_w: float = 100.0  # adaptation time constant (steps)
    v_rest: float = -4.0
    v_threshold: float = 0.0  # exponential knee V_T
    v_cutoff: float = 1.0  # declared-spike voltage
    v_reset: float = -4.5
    coupling_a: float = 0.02
    jump_b: float = 0.2


class AdExNeuron:
    """Forward-Euler AdEx neuron with a pluggable exponential.

    ``exp_fn`` receives only non-positive arguments; pass
    ``lambda x: nacu.exp(x)`` to run the upstroke non-linearity on NACU.
    """

    def __init__(
        self,
        params: Optional[AdExParameters] = None,
        exp_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ):
        self.params = params or AdExParameters()
        self.exp_fn = exp_fn or reference.exp

    def run(self, current: np.ndarray, dt: float = 1.0):
        """Integrate an input current trace; returns (voltages, spikes)."""
        p = self.params
        current = np.asarray(current, dtype=np.float64)
        v = p.v_rest
        w = 0.0
        voltages = np.empty_like(current)
        spikes = np.zeros(len(current), dtype=bool)
        for step, i_in in enumerate(current):
            exponent = np.minimum(v - p.v_threshold, 0.0)
            upstroke = float(np.asarray(self.exp_fn(np.array([exponent]))).ravel()[0])
            dv = (-(v - p.v_rest) + upstroke - w + i_in) / p.tau_m
            dw = (p.coupling_a * (v - p.v_rest) - w) / p.tau_w
            v += dt * dv
            w += dt * dw
            if v >= p.v_cutoff:
                spikes[step] = True
                v = p.v_reset
                w += p.jump_b
            voltages[step] = v
        return voltages, spikes

    def spike_count(self, current: np.ndarray, dt: float = 1.0) -> int:
        """Number of spikes the trace elicits."""
        return int(np.sum(self.run(current, dt)[1]))


class AdExPopulation:
    """A recurrently coupled population of AdEx neurons.

    Synapses carry exponentially decaying currents; both the upstroke
    non-linearity and the synaptic decay constant go through ``exp_fn``,
    so a NACU-backed population exercises the exponential at scale
    (n neurons x n steps evaluations).
    """

    def __init__(
        self,
        n_neurons: int = 16,
        params: Optional[AdExParameters] = None,
        exp_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        weights: Optional[np.ndarray] = None,
        tau_syn: float = 5.0,
        seed: int = 0,
    ):
        self.n = n_neurons
        self.params = params or AdExParameters()
        self.exp_fn = exp_fn or reference.exp
        if weights is None:
            rng = np.random.default_rng(seed)
            weights = rng.uniform(0.0, 0.4, size=(n_neurons, n_neurons))
            np.fill_diagonal(weights, 0.0)
        self.weights = np.asarray(weights, dtype=np.float64)
        #: Synaptic decay per step, itself computed through exp_fn.
        self.syn_decay = float(
            np.asarray(self.exp_fn(np.array([-1.0 / tau_syn]))).ravel()[0]
        )

    def run(self, current, n_steps: Optional[int] = None):
        """Integrate; returns ``(voltages, spikes)`` of shape (steps, n)."""
        p = self.params
        current = np.asarray(current, dtype=np.float64)
        if current.ndim == 0:
            if n_steps is None:
                raise ValueError("scalar current needs n_steps")
            current = np.full((n_steps, self.n), float(current))
        elif current.ndim == 1:
            current = np.broadcast_to(
                current[:, None], (len(current), self.n)
            ).copy()
        steps = current.shape[0]
        v = np.full(self.n, p.v_rest)
        w = np.zeros(self.n)
        syn = np.zeros(self.n)
        voltages = np.empty((steps, self.n))
        spikes = np.zeros((steps, self.n), dtype=bool)
        for t in range(steps):
            exponent = np.minimum(v - p.v_threshold, 0.0)
            upstroke = np.asarray(self.exp_fn(exponent), dtype=np.float64)
            dv = (-(v - p.v_rest) + upstroke - w + current[t] + syn) / p.tau_m
            dw = (p.coupling_a * (v - p.v_rest) - w) / p.tau_w
            v = v + dv
            w = w + dw
            fired = v >= p.v_cutoff
            spikes[t] = fired
            v = np.where(fired, p.v_reset, v)
            w = w + p.jump_b * fired
            # Synaptic propagation: decay, then add this step's spikes.
            syn = syn * self.syn_decay + self.weights @ fired.astype(np.float64)
            voltages[t] = v
        return voltages, spikes

    def spike_counts(self, current, n_steps: Optional[int] = None) -> np.ndarray:
        """Per-neuron spike totals."""
        return self.run(current, n_steps)[1].sum(axis=0)


def coincidence_factor(
    spikes_a: np.ndarray,
    spikes_b: np.ndarray,
    window: int = 2,
) -> float:
    """Kistler coincidence factor between two spike trains (1 = identical).

    Counts spikes of train B landing within ``window`` steps of a spike of
    train A, corrected for chance coincidences and normalised; the
    standard quantitative answer to "are these two rasters the same
    neuron?" — used to compare float and NACU simulations.
    """
    spikes_a = np.asarray(spikes_a, dtype=bool)
    spikes_b = np.asarray(spikes_b, dtype=bool)
    if spikes_a.shape != spikes_b.shape:
        raise ValueError("spike trains must share a time base")
    n_a = int(spikes_a.sum())
    n_b = int(spikes_b.sum())
    if n_a == 0 and n_b == 0:
        return 1.0
    if n_a == 0 or n_b == 0:
        return 0.0
    times_a = np.where(spikes_a)[0]
    times_b = np.where(spikes_b)[0]
    coincidences = sum(
        1 for t in times_b if np.min(np.abs(times_a - t)) <= window
    )
    steps = len(spikes_a)
    rate_a = n_a / steps
    expected = 2.0 * rate_a * (window + 0.5) * n_b  # chance coincidences
    norm = 0.5 * (n_a + n_b)
    denominator = 1.0 - 2.0 * rate_a * (window + 0.5)
    if denominator <= 0:
        return 0.0
    return float((coincidences - expected) / (norm * denominator))
