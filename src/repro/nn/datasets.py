"""Synthetic datasets for the example workloads.

No network access is available, so the MNIST-class workloads the paper
implies are replaced by synthetic ones: a Gaussian-cluster classification
problem for the MLP/softmax pipeline and a sequence-sum task for the
LSTM. Both are deterministic given a seed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def make_gaussian_clusters(
    n_classes: int = 4,
    n_features: int = 16,
    n_per_class: int = 200,
    spread: float = 1.2,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Spherical Gaussian clusters with unit-separated random centres.

    Returns ``(features, labels)`` with features roughly in [-4, 4] so
    they sit inside NACU's Q4.11 input range without rescaling.
    """
    rng = np.random.default_rng(seed)
    centres = rng.uniform(-2.5, 2.5, size=(n_classes, n_features))
    features = []
    labels = []
    for cls, centre in enumerate(centres):
        points = centre + rng.normal(scale=spread / 2.0, size=(n_per_class, n_features))
        features.append(points)
        labels.append(np.full(n_per_class, cls))
    x = np.clip(np.concatenate(features), -4.0, 4.0)
    y = np.concatenate(labels)
    order = rng.permutation(len(y))
    return x[order], y[order]


def make_sequence_sums(
    n_sequences: int = 256,
    length: int = 12,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sequences of small reals, labelled 1 when their sum is positive.

    A task an LSTM cell solves by integrating its input — exercising the
    gate sigmoids and cell tanh over many timesteps.
    """
    rng = np.random.default_rng(seed)
    sequences = rng.uniform(-1.0, 1.0, size=(n_sequences, length, 1))
    labels = (np.sum(sequences, axis=(1, 2)) > 0).astype(np.int64)
    return sequences, labels


def make_bar_images(
    n_per_class: int = 100,
    size: int = 12,
    noise: float = 0.15,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Tiny images of horizontal / vertical / diagonal bars (3 classes).

    The CNN workload's stand-in dataset: orientation is exactly what the
    fixed Sobel-style filter bank separates, so a trained dense head on
    pooled conv features classifies it well. Pixels lie in [0, 1].
    Returns ``(images, labels)`` with images shaped (n, size, size, 1).
    """
    rng = np.random.default_rng(seed)
    images, labels = [], []
    for cls in range(3):
        for _ in range(n_per_class):
            canvas = np.zeros((size, size))
            position = rng.integers(2, size - 2)
            if cls == 0:  # horizontal bar
                canvas[position, :] = 1.0
            elif cls == 1:  # vertical bar
                canvas[:, position] = 1.0
            else:  # main-diagonal bar with a random offset
                offset = rng.integers(-(size // 3), size // 3 + 1)
                idx = np.arange(size)
                rows = np.clip(idx + offset, 0, size - 1)
                canvas[rows, idx] = 1.0
            canvas += rng.normal(scale=noise, size=canvas.shape)
            images.append(np.clip(canvas, 0.0, 1.0))
            labels.append(cls)
    images_arr = np.stack(images)[..., np.newaxis]
    labels_arr = np.array(labels)
    order = rng.permutation(len(labels_arr))
    return images_arr[order], labels_arr[order]


def make_step_currents(
    n_steps: int = 2000,
    levels=(0.0, 0.5, 1.0, 1.5),
    seed: int = 0,
) -> np.ndarray:
    """A piecewise-constant input current trace for the spiking neuron."""
    rng = np.random.default_rng(seed)
    segment = n_steps // len(levels)
    current = np.concatenate(
        [np.full(segment, level) for level in levels]
        + [np.full(n_steps - segment * len(levels), levels[-1])]
    )
    return current + rng.normal(scale=0.01, size=n_steps)
