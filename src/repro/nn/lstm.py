"""An LSTM cell whose gates run through the activation provider.

LSTMs are the paper's second headline workload: every timestep needs
three sigmoids and two tanhs, which a morphable unit serves from the same
hardware by switching configuration.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.funcs import reference
from repro.nn.activations import ActivationProvider, FloatActivations
from repro.telemetry import collector as _telemetry


class LstmCell:
    """A single-layer LSTM cell with standard gate equations.

    Weight layout: ``w_x`` maps inputs and ``w_h`` maps the previous
    hidden state onto the concatenated ``[input, forget, cell, output]``
    gate pre-activations.
    """

    def __init__(self, n_inputs: int, n_hidden: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        scale = 1.0 / np.sqrt(n_inputs + n_hidden)
        self.n_inputs = n_inputs
        self.n_hidden = n_hidden
        self.w_x = rng.normal(scale=scale, size=(n_inputs, 4 * n_hidden))
        self.w_h = rng.normal(scale=scale, size=(n_hidden, 4 * n_hidden))
        self.bias = np.zeros(4 * n_hidden)
        # Standard trick: positive forget-gate bias to remember by default.
        self.bias[n_hidden:2 * n_hidden] = 1.0

    def step(
        self,
        x: np.ndarray,
        state: Tuple[np.ndarray, np.ndarray],
        provider: ActivationProvider = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One timestep; returns the new ``(hidden, cell)`` state."""
        provider = provider or FloatActivations()
        hidden, cell = state
        gates = x @ self.w_x + hidden @ self.w_h + self.bias
        n = self.n_hidden
        # One batched sigmoid over the input/forget/output gates (the
        # activations are elementwise, so evaluating the three blocks in a
        # single provider call is bit-identical to three separate calls and
        # lets a batch engine quantise the timestep's gates once).
        sig_pre = np.concatenate(
            [gates[..., 0:2 * n], gates[..., 3 * n:4 * n]], axis=-1
        )
        sig_block = provider.sigmoid(sig_pre)
        i_gate = sig_block[..., 0:n]
        f_gate = sig_block[..., n:2 * n]
        o_gate = sig_block[..., 2 * n:3 * n]
        g_cell = provider.tanh(gates[..., 2 * n:3 * n])
        new_cell = f_gate * cell + i_gate * g_cell
        cell_tanh = provider.tanh(new_cell)
        new_hidden = o_gate * cell_tanh
        # Per-gate quantisation error vs the float64 reference, folded
        # into the collector when telemetry is on (one check per step).
        engine = getattr(provider, "engine", None)
        tel = _telemetry.resolve(
            engine.collector if engine is not None else None
        )
        if tel is not None:
            tel.record_error(
                "nn.lstm.gates.sigmoid", sig_block, reference.sigmoid(sig_pre)
            )
            tel.record_error(
                "nn.lstm.gates.tanh", g_cell,
                reference.tanh(gates[..., 2 * n:3 * n]),
            )
            tel.record_error(
                "nn.lstm.hidden.tanh", cell_tanh, reference.tanh(new_cell)
            )
        return new_hidden, new_cell

    def initial_state(self, batch: int) -> Tuple[np.ndarray, np.ndarray]:
        """Zero hidden and cell states."""
        return np.zeros((batch, self.n_hidden)), np.zeros((batch, self.n_hidden))

    def run(
        self,
        sequences: np.ndarray,
        provider: ActivationProvider = None,
    ) -> np.ndarray:
        """Run full sequences ``(batch, time, features)``; final hidden."""
        sequences = np.asarray(sequences, dtype=np.float64)
        state = self.initial_state(sequences.shape[0])
        for t in range(sequences.shape[1]):
            state = self.step(sequences[:, t, :], state, provider)
        return state[0]
