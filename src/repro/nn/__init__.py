"""Neural-network substrate exercising NACU as its activation engine.

The paper motivates NACU with CGRAs hosting "any mix of ANNs and SNNs":
CNN/MLP layers need sigma/softmax, LSTMs need sigma and tanh in their
gates, spiking neurons need the exponential. This package provides small
numpy implementations of all three workload classes, trained (where
applicable) in float and executed in fixed point with NACU supplying
every non-linearity, so end-to-end accuracy deltas can be measured.
"""

from repro.nn.activations import ActivationProvider, FloatActivations, NacuActivations
from repro.nn.cnn import SmallCnn
from repro.nn.conv import QuantizedConv2d, global_average_pool, im2col, max_pool2d
from repro.nn.datasets import make_bar_images, make_gaussian_clusters, make_sequence_sums
from repro.nn.quantized import quantized_matmul
from repro.nn.mlp import FixedPointMlp, Mlp
from repro.nn.lstm import LstmCell
from repro.nn.lstm_trainer import LstmClassifier
from repro.nn.snn import AdExNeuron

__all__ = [
    "ActivationProvider",
    "AdExNeuron",
    "FixedPointMlp",
    "FloatActivations",
    "LstmCell",
    "LstmClassifier",
    "Mlp",
    "NacuActivations",
    "QuantizedConv2d",
    "SmallCnn",
    "global_average_pool",
    "im2col",
    "make_bar_images",
    "make_gaussian_clusters",
    "make_sequence_sums",
    "max_pool2d",
    "quantized_matmul",
]
