"""Activation providers: float reference vs NACU-backed.

Network code is written against :class:`ActivationProvider`, so swapping
the float64 golden model for a bit-accurate NACU (or any baseline) is a
one-line change — the same way a CGRA would re-target its non-linear slot.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.engine import BatchEngine
from repro.funcs import reference
from repro.nacu.unit import Nacu


class ActivationProvider(abc.ABC):
    """The non-linearities a network needs, as array->array callables."""

    @abc.abstractmethod
    def sigmoid(self, x: np.ndarray) -> np.ndarray:
        """Elementwise sigma."""

    @abc.abstractmethod
    def tanh(self, x: np.ndarray) -> np.ndarray:
        """Elementwise tanh."""

    @abc.abstractmethod
    def softmax(self, x: np.ndarray) -> np.ndarray:
        """Row-wise softmax of a 2-D array."""


class FloatActivations(ActivationProvider):
    """The float64 golden model."""

    def sigmoid(self, x):
        return reference.sigmoid(x)

    def tanh(self, x):
        return reference.tanh(x)

    def softmax(self, x):
        return reference.softmax_normalised(np.asarray(x, dtype=np.float64), axis=-1)


class NacuActivations(ActivationProvider):
    """Every non-linearity computed by one (shared, time-multiplexed) NACU.

    All calls go through a :class:`~repro.engine.BatchEngine` over the
    unit, so whole layers are evaluated in one vectorised pass (one
    quantise in, one de-quantise out) instead of element- or row-at-a-time
    — bit-identical to the scalar path, at numpy speed.
    """

    def __init__(self, nacu: Nacu = None, engine: BatchEngine = None):
        self.engine = engine if engine is not None else BatchEngine(nacu)
        self.nacu = self.engine.nacu

    def sigmoid(self, x):
        x = np.asarray(x, dtype=np.float64)
        return np.asarray(self.engine.sigmoid(x))

    def tanh(self, x):
        x = np.asarray(x, dtype=np.float64)
        return np.asarray(self.engine.tanh(x))

    def softmax(self, x):
        x = np.asarray(x, dtype=np.float64)
        return np.asarray(self.engine.softmax(x, axis=-1))
