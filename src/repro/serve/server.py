"""The inference server: ``submit()``/``close()`` over a worker pool.

:class:`InferenceServer` is the request-level front end the rest of the
stack was missing: callers hand it single samples or small arrays and
get back a ``concurrent.futures.Future``; a dispatcher thread coalesces
everything through the :class:`~repro.serve.batcher.MicroBatcher` and a
pool of worker threads runs the fused batches through one
:class:`~repro.engine.BatchEngine` — by default over the compiled-table
fast path, optionally attached to a zero-copy shared table store
(:mod:`repro.serve.store`) so N servers across N processes share one
table image.

Overload policy is shed-and-count: when the bounded pending pool is
full, ``submit`` raises :class:`~repro.errors.BackpressureError`
immediately and the shed is counted under ``serve.shed`` — the server
never buffers without bound and never drops work silently.

Observability rides the existing telemetry collector: ``serve.requests``
/ ``serve.batches`` / ``serve.shed`` counters, a ``serve.batch_fill``
histogram (requests fused per batch), a ``serve.queue_wait`` span timer
(enqueue to dispatch), and the engine's own per-batch datapath cycle
ledger — so one snapshot shows queue health *and* modelled silicon time.
On top of that the server feeds the full observability layer: per-mode
request-latency quantiles (``serve.latency.<mode>``, exact-merging
p50/p99/p999 — :mod:`repro.telemetry.quantiles`), sampled per-request
traces through the :mod:`repro.telemetry.trace` registry (or an injected
``tracer=``), and SLO good/bad/shed accounting against an optional
``slo=`` policy where every shed burns error budget.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Optional, Union

from repro.compile.cache import TableCache
from repro.engine import BatchEngine, InputLike
from repro.errors import BackpressureError, ServeError, ServerClosedError
from repro.nacu.config import FunctionMode, NacuConfig
from repro.serve.batcher import SERVABLE_MODES, MicroBatcher, build_request
from repro.serve.resilience import ResponsePolicy, ResponseVerifier
from repro.telemetry import collector as _telemetry
from repro.telemetry import trace as _tracing
from repro.telemetry.slo import SLOAccountant, SLOPolicy

_MODE_BY_NAME = {mode.value: mode for mode in SERVABLE_MODES}


class InferenceServer:
    """Micro-batching front end over one NACU configuration.

    >>> from repro.serve import InferenceServer
    >>> with InferenceServer(n_bits=16) as server:
    ...     future = server.submit(0.5, mode="sigmoid")
    ...     round(future.result(), 4)
    0.6225

    ``workers=1`` (the default) executes batches on the dispatcher
    thread itself — the fastest shape on a single core; ``workers>1``
    fans fused batches out to a thread pool. The engine's compiled
    tables are shared through the (thread-safe) table cache either way,
    and ``table_source`` attaches the cache to a published
    :class:`~repro.serve.store.SharedTableStore` manifest so the server
    holds no private table copies at all.
    """

    def __init__(
        self,
        engine: Optional[BatchEngine] = None,
        *,
        config: Optional[NacuConfig] = None,
        n_bits: Optional[int] = None,
        fast: Optional[bool] = True,
        workers: int = 1,
        max_batch_elements: int = 4096,
        max_delay_us: float = 200.0,
        max_pending_elements: int = 1 << 20,
        table_source=None,
        collector=None,
        tracer=None,
        slo=None,
        resilience: Optional[ResponsePolicy] = None,
    ):
        if workers < 1:
            raise ServeError("the server needs at least one worker")
        if engine is None:
            if config is None:
                config = (
                    NacuConfig.for_bits(n_bits) if n_bits is not None
                    else NacuConfig()
                )
            cache = (
                TableCache(source=table_source)
                if table_source is not None else None
            )
            engine = BatchEngine(
                config=config, fast=fast, table_cache=cache,
                collector=collector,
            )
        elif config is not None or n_bits is not None:
            raise ServeError("pass either an engine or a config, not both")
        self.engine = engine
        self.collector = (
            collector if collector is not None else engine.collector
        )
        #: Injected tracer; ``None`` defers to the module registry in
        #: :mod:`repro.telemetry.trace` at each dispatch, so
        #: ``enable_tracing()`` reaches a running server.
        self.tracer = tracer
        #: SLO accounting: pass an :class:`SLOPolicy` (an accountant is
        #: built over this server's collector) or a shared
        #: :class:`SLOAccountant`; ``None`` disables the ledger.
        self.slo = (
            SLOAccountant(slo, collector=self.collector)
            if isinstance(slo, SLOPolicy) else slo
        )
        self.workers = workers
        #: In-process response defence: the invariant checks and bounded
        #: re-evaluation half of a :class:`ResponsePolicy`. Canaries,
        #: hedging and quarantine are pool concepts (they exist for the
        #: process trust boundary) and are ignored here.
        self._verifier = (
            ResponseVerifier(
                self.engine.nacu.config, resilience.softmax_sum_slack
            )
            if resilience is not None and resilience.verify else None
        )
        self._max_retries = (
            resilience.max_retries if resilience is not None else 0
        )
        self._batcher = MicroBatcher(
            max_batch_elements=max_batch_elements,
            max_delay_us=max_delay_us,
            max_pending_elements=max_pending_elements,
        )
        self._cond = threading.Condition()
        self._closed = False
        self._flush_on_close = True
        self._pool = (
            ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="nacu-serve"
            )
            if workers > 1 else None
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="nacu-serve-dispatch", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # The client API
    # ------------------------------------------------------------------
    def submit(
        self,
        x: InputLike,
        mode: Union[FunctionMode, str] = FunctionMode.SIGMOID,
        axis: int = -1,
    ) -> Future:
        """Enqueue one evaluation; the future resolves in request kind.

        A float/array input resolves to floats, an :class:`FxArray`
        input to a raw :class:`FxArray` — same convention as the engine.
        Raises :class:`BackpressureError` when the pending pool is full
        and :class:`ServerClosedError` after :meth:`close` began.
        """
        if isinstance(mode, str):
            try:
                mode = _MODE_BY_NAME[mode]
            except KeyError:
                raise ServeError(
                    f"unknown mode {mode!r}; servable modes: "
                    f"{sorted(_MODE_BY_NAME)}"
                ) from None
        future: Future = Future()
        request = build_request(future, x, mode, axis, self.engine)
        with self._cond:
            if self._closed:
                raise ServerClosedError("submit() after close()")
            # An idle dispatcher waits without a timeout, so the first
            # request of an empty pool must wake it to arm the deadline.
            was_idle = not self._batcher
            if not self._batcher.offer(request):
                self._count("serve.shed")
                if self.slo is not None:
                    # A refused user is a failed objective: sheds burn
                    # the error budget even though no work ran.
                    self.slo.record_shed()
                raise BackpressureError(
                    f"pending pool full "
                    f"({self._batcher.pending_elements} elements held, "
                    f"{request.elements} more would exceed "
                    f"{self._batcher.max_pending_elements}); retry later"
                )
            # ``serve.requests`` counting and trace sampling both happen
            # per *batch* at dispatch (``Batch.run`` jumps the tracer's
            # counter once and touches only the sampled members) —
            # totals and the every-Nth sample set are identical once the
            # queue drains, and the submit fast path stays free of
            # per-request collector and tracer work.
            # Below-ceiling groups flush by the dispatcher's own
            # deadline timeout; waking it per submit just burns one
            # context switch per request on the coalescing path.
            if was_idle or self._batcher.has_full_group:
                self._cond.notify()
        return future

    def close(self, flush: bool = True) -> None:
        """Stop accepting requests; drain (or fail) the queue; join.

        With ``flush`` (the default) every admitted request still
        completes before the dispatcher exits; ``flush=False`` fails
        pending futures with :class:`ServerClosedError` instead.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._flush_on_close = flush
            self._cond.notify_all()
        self._dispatcher.join()
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        in_flight = []
        while True:
            with self._cond:
                while True:
                    now = time.perf_counter_ns()
                    ready = self._batcher.take_ready(
                        now, flush_all=self._closed
                    )
                    if ready or self._closed:
                        break
                    deadline = self._batcher.next_deadline_ns()
                    timeout = (
                        None if deadline is None
                        else max(deadline - now, 0) / 1e9
                    )
                    self._cond.wait(timeout)
                done = self._closed and not self._batcher
            tracer = _tracing.resolve(self.tracer)
            if self._closed and not self._flush_on_close:
                now = time.perf_counter_ns()
                for batch in ready:
                    self._count("serve.requests", len(batch.requests))
                    exc = ServerClosedError("server closed before dispatch")
                    for request in batch.requests:
                        request.future.set_exception(exc)
                        if request.trace is not None:
                            request.trace.dispatch_ns = now
                            request.trace.status = "shed"
                            if tracer is not None:
                                tracer.retire(request.trace)
                    if self.slo is not None:
                        self.slo.record_many(
                            [0] * len(batch.requests), ok=False
                        )
            elif self._pool is None:
                for batch in ready:
                    batch.run(
                        self.engine, self.collector, tracer, self.slo,
                        verifier=self._verifier,
                        max_retries=self._max_retries,
                    )
            else:
                in_flight = [f for f in in_flight if not f.done()]
                in_flight.extend(
                    self._pool.submit(
                        batch.run, self.engine, self.collector, tracer,
                        self.slo, verifier=self._verifier,
                        max_retries=self._max_retries,
                    )
                    for batch in ready
                )
            if done and not ready:
                for future in in_flight:
                    future.result()
                return

    def _count(self, name: str, n: int = 1) -> None:
        tel = _telemetry.resolve(self.collector)
        if tel is not None:
            tel.count(name, n)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"<InferenceServer {state}, {self.workers} worker(s), "
            f"{self._batcher.pending_requests} pending over {self.engine!r}>"
        )
