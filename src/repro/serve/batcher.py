"""The dynamic micro-batcher: coalesce small requests, evaluate once.

The vectorised datapath (and the compiled-table gather even more so) is
dominated by *per-call* overhead at small sizes: a scalar sigmoid pays
the same dispatch, telemetry resolve and table lookup as a million-
element batch. The batcher exploits that by parking incoming requests
per ``(mode, row-width)`` group for at most a latency deadline, fusing
everything that accumulates into **one** engine pass, and scattering the
raw results back — so a stream of single-sample requests evaluates at
large-batch throughput.

Bit identity is structural, not statistical: elementwise modes are pure
per-code maps and the batched softmax is row-independent, so
concatenating requests, evaluating once, and slicing the output yields
exactly the raw words each request would have produced alone
(``tests/serve/test_batcher.py`` pins this property over random splits).

Backpressure is explicit: the pending pool is bounded in *elements*, and
an offer that would overflow it is refused — the server turns that into
:class:`~repro.errors.BackpressureError` and counts the shed — never
buffered without bound, never silently dropped.

The batcher itself is lock-free by design: the owning server serialises
every call under its own condition variable, so this module stays a pure
data structure that is easy to test.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.engine import BatchEngine
from repro.errors import RangeError, ResponseVerificationError, ServeError
from repro.fixedpoint import FxArray
from repro.nacu.config import FunctionMode
from repro.telemetry import collector as _telemetry
from repro.telemetry import trace as _tracing

#: Modes the batcher can serve. MAC is excluded: it is a stateful
#: accumulation, not a per-request function evaluation.
SERVABLE_MODES = (
    FunctionMode.SIGMOID,
    FunctionMode.TANH,
    FunctionMode.EXP,
    FunctionMode.SOFTMAX,
)

_EXP_DOMAIN_MESSAGE = (
    "the exponential path is specified for x <= 0; normalise "
    "inputs by their maximum first (Eq. 13)"
)


class Request:
    """One pending evaluation: raw payload, result future, emit recipe."""

    __slots__ = (
        "future", "mode", "raw", "shape", "axis", "emit_fx", "emit_scalar",
        "enqueue_ns", "trace",
    )

    def __init__(self, future, mode: FunctionMode, raw: np.ndarray,
                 shape: Tuple[int, ...], axis: int,
                 emit_fx: bool, emit_scalar: bool):
        self.future = future
        self.mode = mode
        #: Elementwise: the flattened raw words. Softmax: a 2-D row stack
        #: (the requested axis moved last) in request order.
        self.raw = raw
        #: The shape to restore on scatter (axis already moved last for
        #: softmax; ``axis`` moves it back).
        self.shape = shape
        self.axis = axis
        self.emit_fx = emit_fx
        self.emit_scalar = emit_scalar
        self.enqueue_ns = time.perf_counter_ns()
        #: The sampled :class:`~repro.telemetry.trace.RequestTrace`
        #: following this request, or ``None`` (the common case).
        self.trace = None

    @property
    def elements(self) -> int:
        return self.raw.size


def build_request(future, x, mode: FunctionMode, axis: int,
                  engine: BatchEngine) -> Request:
    """Quantise ``x`` into the engine's format and shape it for coalescing.

    Runs in the *caller's* thread so quantisation parallelises across
    clients and the dispatcher only ever touches raw words. Domain
    errors (a positive input to ``exp``, a scalar to ``softmax``) are
    raised here, before the request can join — and poison — a batch.
    """
    if mode not in SERVABLE_MODES:
        raise ServeError(
            f"mode {getattr(mode, 'value', mode)!r} is not servable; "
            f"servable modes: {[m.value for m in SERVABLE_MODES]}"
        )
    emit_fx = isinstance(x, FxArray)
    fx = x if emit_fx else FxArray.from_float(
        np.asarray(x, dtype=np.float64), engine.io_fmt
    )
    if fx.fmt != engine.io_fmt:
        raise ServeError(
            f"request format {fx.fmt} does not match the server's "
            f"{engine.io_fmt}"
        )
    emit_scalar = fx.raw.ndim == 0
    if mode is FunctionMode.SOFTMAX:
        if fx.raw.ndim == 0:
            raise RangeError("softmax needs at least one axis of inputs")
        moved = np.moveaxis(fx.raw, axis, -1)
        raw = np.ascontiguousarray(moved.reshape(-1, moved.shape[-1]))
        return Request(future, mode, raw, moved.shape, axis, emit_fx, False)
    if mode is FunctionMode.EXP and np.any(fx.raw > 0):
        raise RangeError(_EXP_DOMAIN_MESSAGE)
    raw = np.ascontiguousarray(fx.raw).reshape(-1)
    return Request(future, mode, raw, fx.raw.shape, axis, emit_fx, emit_scalar)


def evaluate_fused(engine: BatchEngine, mode: FunctionMode,
                   raw: np.ndarray) -> np.ndarray:
    """One fused engine pass over concatenated raw words.

    The single kernel hop both serving tiers share: the in-process
    dispatcher calls it directly and the worker pool calls it on the far
    side of the pipe — so a pooled response can only ever be the bytes
    the local path would have produced. ``raw`` is the flat elementwise
    concatenation, or the 2-D row stack for softmax.
    """
    fused = FxArray._wrap(raw, engine.io_fmt)
    if mode is FunctionMode.SOFTMAX:
        return engine.softmax_fx(fused, axis=-1).raw
    kernel: Callable[[FxArray], FxArray] = {
        FunctionMode.SIGMOID: engine.sigmoid_fx,
        FunctionMode.TANH: engine.tanh_fx,
        FunctionMode.EXP: engine.exp_fx,
    }[mode]
    return kernel(fused).raw


class Batch:
    """One coalesced engine pass over same-group requests."""

    __slots__ = ("mode", "requests", "elements")

    def __init__(self, mode: FunctionMode, requests: List[Request]):
        self.mode = mode
        self.requests = requests
        self.elements = sum(r.elements for r in requests)

    def fused_raw(self) -> np.ndarray:
        """The gathered raw payload for :func:`evaluate_fused`.

        A batch of one request (the large pre-formed-batch regime) needs
        no gather: its raw words are handed over in place so the serving
        layer adds no copy on top of the engine call.
        """
        if len(self.requests) == 1:
            return self.requests[0].raw
        return np.concatenate([r.raw for r in self.requests])

    @property
    def fused_shape(self) -> Tuple[int, ...]:
        """The shape of :meth:`fused_raw`, without materialising it.

        What a zero-copy transport puts in its control frame: the flat
        element count for elementwise modes, the stacked ``(rows,
        width)`` for softmax.
        """
        if self.mode is FunctionMode.SOFTMAX:
            width = self.requests[0].raw.shape[-1]
            return (self.elements // width, width)
        return (self.elements,)

    @property
    def emits_raw(self) -> bool:
        """Whether any member future receives the raw words themselves.

        ``FxArray`` clients get a view over the fused output on scatter;
        a serving layer that recycles its output buffer (the ring
        transport) must unshare the bytes first. Float futures copy on
        scatter either way.
        """
        return any(r.emit_fx for r in self.requests)

    def gather_into(self, out: np.ndarray) -> None:
        """Scatter-gather the fused payload straight into ``out`` (flat).

        The zero-copy dual of :meth:`fused_raw`: the ring transport
        hands over the destination slot and the member payloads land
        there directly, with no intermediate concatenation.
        """
        offset = 0
        for request in self.requests:
            flat = request.raw.reshape(-1)
            out[offset:offset + flat.size] = flat
            offset += flat.size

    def split_points(self) -> np.ndarray:
        """Where the fused output splits back into per-request slices."""
        if self.mode is FunctionMode.SOFTMAX:
            return np.cumsum([r.raw.shape[0] for r in self.requests])[:-1]
        return np.cumsum([r.elements for r in self.requests])[:-1]

    def begin(self, collector=None, tracer=None, slo=None,
              dispatch_ns: Optional[int] = None):
        """Dispatch-side observability: sampling, counters, queue waits.

        Called where the batch leaves the queue — the in-process
        dispatcher just before it evaluates, the pool just before the
        batch crosses the pipe. Returns ``(tel, traces, enqueue_ns)``
        for the matching :meth:`finish`/:meth:`fail`.
        """
        traces = []
        if tracer is not None:
            # Sampling happens here, not per submit: one counter jump
            # covers the whole batch and only the every-Nth members the
            # sequential policy would have picked get a trace opened —
            # unsampled requests are never even looked at.
            for i in tracer.sample_batch(len(self.requests)):
                request = self.requests[i]
                if request.trace is None:
                    request.trace = tracer.begin(
                        request.mode.value, request.elements,
                        request.enqueue_ns,
                    )
                traces.append(request.trace)
        tel = _telemetry.resolve(collector)
        if dispatch_ns is None:
            dispatch_ns = time.perf_counter_ns()
        # One int64 array of enqueue stamps serves both the queue-wait
        # fold here and the latency fold after the scatter — no
        # per-request Python calls on the batch path.
        enqueue_ns = (
            np.fromiter(
                (r.enqueue_ns for r in self.requests),
                dtype=np.int64, count=len(self.requests),
            )
            if tel is not None or slo is not None else None
        )
        if tel is not None:
            tel.observe_span_many("serve.queue_wait", dispatch_ns - enqueue_ns)
            tel.count("serve.requests", len(self.requests))
            tel.count("serve.batches")
            tel.count("serve.batch_elements", self.elements)
            tel.observe("serve.batch_fill", len(self.requests))
            if traces:
                tel.count("serve.traced", len(traces))
        return tel, traces, enqueue_ns

    def finish(self, out_raw: np.ndarray, fmt, *, tel=None, traces=(),
               enqueue_ns=None, slo=None, tracer=None,
               dispatch_ns: int = 0, sink=None) -> None:
        """Scatter the fused output and resolve every member future.

        The completion half of :meth:`begin`: per-mode latency quantile
        fold, SLO good/bad classification, and trace retirement with the
        batch's stage timeline (``sink``). May raise — callers wrap it
        exactly like the evaluation itself (see :meth:`run`).
        """
        for request, raw in zip(
            self.requests, np.split(out_raw, self.split_points())
        ):
            self._finish(request, raw, fmt)
        finish_ns = time.perf_counter_ns()
        if enqueue_ns is not None:
            latencies = finish_ns - enqueue_ns
            if tel is not None:
                tel.observe_latency_many(
                    f"serve.latency.{self.mode.value}", latencies
                )
            if slo is not None:
                slo.record_many(latencies)
        if traces:
            self._retire(traces, sink, dispatch_ns, finish_ns, "ok", tracer)

    def fail(self, exc: BaseException, *, traces=(), slo=None,
             tracer=None) -> None:
        """Fail every unresolved member future with ``exc`` (never raises)."""
        for request in self.requests:
            if not request.future.done():
                request.future.set_exception(exc)
        if slo is not None:
            slo.record_many([0] * len(self.requests), ok=False)
        if traces:
            self._retire(
                traces, None, time.perf_counter_ns(), None, "error", tracer
            )

    def run(self, engine: BatchEngine, collector=None,
            tracer=None, slo=None, verifier=None,
            max_retries: int = 0) -> None:
        """Evaluate, scatter, resolve every future (never raises).

        Observability rides per batch: queue-wait spans, a per-mode
        request-latency quantile fold (one vectorised pass), SLO
        good/bad classification, and — only when the batch carries
        sampled traces — a stage sink around the engine call whose
        collected timeline fans out to every member trace.

        ``verifier`` (a :class:`~repro.serve.resilience.
        ResponseVerifier`) checks the fused output's invariants before
        any future resolves; a flagged result is re-evaluated up to
        ``max_retries`` times — meaningful under an armed transient
        fault plan, whose RNG streams advance per crossing — and then
        failed loudly with :class:`ResponseVerificationError`. Counts
        land under the same ``serve.resilience.*`` names the pool uses.
        """
        start = time.perf_counter_ns()
        tel, traces, enqueue_ns = self.begin(
            collector, tracer, slo, dispatch_ns=start
        )
        try:
            sink = _tracing.StageSink() if traces else None
            attempt = 0
            while True:
                with _tracing.use_sink(sink):
                    out_raw = evaluate_fused(
                        engine, self.mode, self.fused_raw()
                    )
                reason = (
                    verifier.check(self.mode, out_raw)
                    if verifier is not None else None
                )
                if reason is None:
                    break
                if tel is not None:
                    tel.count("serve.resilience.verify_failures")
                    tel.observe_span(
                        "serve.resilience.detect",
                        time.perf_counter_ns() - start,
                    )
                if attempt >= max_retries:
                    if tel is not None:
                        tel.count("serve.resilience.failed")
                    raise ResponseVerificationError(reason)
                attempt += 1
                if tel is not None:
                    tel.count("serve.resilience.retries")
            if attempt and tel is not None:
                tel.count("serve.resilience.corrected", len(self.requests))
            self.finish(
                out_raw, engine.io_fmt, tel=tel, traces=traces,
                enqueue_ns=enqueue_ns, slo=slo, tracer=tracer,
                dispatch_ns=start, sink=sink,
            )
        except BaseException as exc:  # noqa: BLE001 — forwarded, not dropped
            self.fail(exc, traces=traces, slo=slo, tracer=tracer)

    def _retire(self, traces, sink, dispatch_ns, finish_ns, status,
                tracer) -> None:
        """Stamp batch context into the sampled traces and park them."""
        for trace in traces:
            trace.dispatch_ns = dispatch_ns
            trace.finish_ns = finish_ns
            trace.batch_fill = len(self.requests)
            trace.batch_elements = self.elements
            trace.status = status
        if sink is not None:
            sink.fan_out(traces)
        if tracer is not None:
            tracer.retire_many(traces)

    @staticmethod
    def _finish(request: Request, raw: np.ndarray, fmt) -> None:
        raw = raw.reshape(request.shape)
        if request.mode is FunctionMode.SOFTMAX:
            raw = np.moveaxis(raw, -1, request.axis)
        if request.emit_fx:
            request.future.set_result(FxArray._wrap(raw, fmt))
        else:
            out = raw.astype(np.float64) * fmt.resolution
            request.future.set_result(
                float(out) if request.emit_scalar else out
            )


class MicroBatcher:
    """Per-group pending pools with deadline- and size-triggered flushes.

    Groups are keyed by ``(mode, row_width)`` — row width only matters
    for softmax, whose rows must stack — and flush when they reach
    ``max_batch_elements`` or when their oldest request has waited
    ``max_delay_us``. A single request larger than the batch ceiling is
    accepted and flushed alone: the ceiling bounds coalescing, not
    request size.
    """

    def __init__(self, max_batch_elements: int = 4096,
                 max_delay_us: float = 200.0,
                 max_pending_elements: int = 1 << 20):
        if max_batch_elements <= 0 or max_pending_elements <= 0:
            raise ServeError("batch and pending bounds must be positive")
        self.max_batch_elements = max_batch_elements
        self.max_delay_ns = int(max_delay_us * 1_000)
        self.max_pending_elements = max_pending_elements
        self._groups: Dict[Tuple[str, int], List[Request]] = {}
        self._group_elements: Dict[Tuple[str, int], int] = {}
        self._deadlines: Dict[Tuple[str, int], int] = {}
        self._pending_elements = 0
        self._full_groups = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_elements(self) -> int:
        return self._pending_elements

    @property
    def pending_requests(self) -> int:
        return sum(len(g) for g in self._groups.values())

    @property
    def has_full_group(self) -> bool:
        """Whether some group already holds a size-triggered flush.

        The dispatcher only needs a wake-up when this turns true (or
        when the pool was idle): a submit into a below-ceiling group
        changes nothing the dispatcher's deadline timeout doesn't
        already cover, and skipping the notify avoids one pointless
        context switch per coalesced request.
        """
        return self._full_groups > 0

    def __bool__(self) -> bool:
        return bool(self._groups)

    # ------------------------------------------------------------------
    # Enqueue / drain (caller holds the server lock)
    # ------------------------------------------------------------------
    @staticmethod
    def _key(request: Request) -> Tuple[str, int]:
        width = (
            request.raw.shape[-1]
            if request.mode is FunctionMode.SOFTMAX
            else 0
        )
        return (request.mode.value, width)

    def offer(self, request: Request) -> bool:
        """Admit ``request`` unless the pending pool would overflow."""
        if self._pending_elements + request.elements > self.max_pending_elements:
            return False
        key = self._key(request)
        group = self._groups.setdefault(key, [])
        if not group:
            self._deadlines[key] = request.enqueue_ns + self.max_delay_ns
        group.append(request)
        elements = self._group_elements.get(key, 0) + request.elements
        self._group_elements[key] = elements
        self._pending_elements += request.elements
        if (
            elements >= self.max_batch_elements
            and elements - request.elements < self.max_batch_elements
        ):
            self._full_groups += 1
        return True

    def take_ready(self, now_ns: int, flush_all: bool = False) -> List[Batch]:
        """Pop every group that is full or past deadline as a batch."""
        ready: List[Batch] = []
        for key in list(self._groups):
            if (
                flush_all
                or self._group_elements[key] >= self.max_batch_elements
                or now_ns >= self._deadlines[key]
            ):
                requests = self._groups.pop(key)
                elements = self._group_elements.pop(key)
                self._pending_elements -= elements
                if elements >= self.max_batch_elements:
                    self._full_groups -= 1
                self._deadlines.pop(key)
                ready.append(Batch(FunctionMode(key[0]), requests))
        return ready

    def next_deadline_ns(self) -> Optional[int]:
        """The earliest pending flush deadline, or ``None`` when idle."""
        return min(self._deadlines.values()) if self._deadlines else None
