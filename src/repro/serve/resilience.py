"""End-to-end response defence for the serving path.

The worker pool trusts whatever raw words come back over a pipe. Under
chaos — armed fault plans inside workers, killed processes, stragglers —
that trust is exactly what breaks. This module is the parent-side
defence: every returned batch is checked against cheap invariants
before its futures resolve, failures are classified and answered with
bounded retry / hedging / quarantine, and every decision is counted
under ``serve.resilience.*`` so the soak harness can fold a resilience
report out of ordinary telemetry.

Three detection layers, cheapest first:

* **range invariants** — every servable mode's outputs leave the
  datapath clamped to the function range (``[0, 1]`` for sigmoid /
  e^x / softmax, ``[-1, 1]`` for tanh, in raw units ``[0, 2^fb]`` /
  ``[-2^fb, 2^fb]``), while faults at the ``io.out`` site strike *after*
  the clamp — so any out-of-range raw word is proof of corruption.
  With the I/O format's integer bits ``ib >= 1`` a flip of the word's
  top bit always throws a non-negative mode out of range (``ib >= 2``
  for tanh): upsets pinned to the MSB are *provably* detected, which is
  what the chaos scenarios exploit for their hard zero-silent-wrong
  assertions. In-range flips (low bits) pass this layer — the detection
  envelope is honest, not magic;
* **softmax row sums** — quantised softmax rows sum to ``2^fb`` within
  a per-element rounding/divider slack; a corrupted element usually
  drags the sum outside it;
* **canary requests** — every N batches a slice of inputs with
  precomputed golden outputs rides along the fused payload. The golden
  compare is exact, so *any* upset touching the canary slice is caught
  regardless of bit position. Canaries are appended to the payload
  (never to the request list), so request accounting, traces and SLO
  records are untouched and the non-canary outputs are byte-identical
  to a canary-free pass — elementwise modes are per-code maps and
  softmax is row-independent, so extra trailing elements/rows cannot
  perturb earlier ones.

A :class:`Flight` tracks one batch across dispatch attempts; the
:class:`ResilienceManager` owns the policy decisions (retry on a
different worker, hedge a straggler, fail loudly, quarantine after K
strikes) while the pool keeps the transport (pipes, locks, worker
lifecycle). Verification failures burn the SLO error budget through the
ordinary ``Batch.fail`` path — a corrupted answer is never delivered
as if it were correct.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine import BatchEngine
from repro.errors import (
    ConfigError,
    ResponseTimeoutError,
    ResponseVerificationError,
    WorkerCrashError,
)
from repro.faults.inject import use_plan
from repro.nacu.config import FunctionMode, NacuConfig
from repro.serve.batcher import Batch, evaluate_fused
from repro.telemetry.collector import use_collector


@dataclass(frozen=True)
class ResponsePolicy:
    """What the parent does with (and about) worker responses.

    The default policy verifies invariants and allows one retry —
    everything else (canaries, hedging, timeouts, quarantine) is opt-in,
    so a pool with ``resilience=ResponsePolicy()`` adds two comparisons
    per batch to the clean path and nothing more.
    """

    #: Check range/row-sum invariants on every returned batch.
    verify: bool = True
    #: Append a canary slice every N shipped batches (0: never).
    canary_every: int = 0
    #: Same-request re-dispatches allowed after a failed attempt
    #: (verification failure, worker error reply, or worker crash).
    max_retries: int = 1
    #: Hedge a batch onto a second worker once it has been outstanding
    #: this long (0: never). First acceptable reply wins; the loser is
    #: dropped as a stale reply.
    hedge_after_s: float = 0.0
    #: Fail a flight still unanswered after this long (0: never).
    #: Timeouts are terminal — hedging is the straggler mitigation;
    #: the timeout is the backstop that keeps futures from hanging.
    timeout_s: float = 0.0
    #: Quarantine-then-restart a worker after this many strikes
    #: (verification failures / error replies attributed to it; 0:
    #: never). Quarantine drains gracefully: the worker answers its
    #: in-flight batches, ships its final telemetry snapshot, and only
    #: then is replaced — merged counts stay exact.
    quarantine_after: int = 0
    #: Softmax row-sum slack, in raw LSBs *per row element* (0 disables
    #: the row-sum check). Covers per-element rounding (≤ 0.5 LSB) plus
    #: divider truncation; the clean-path property tests pin that this
    #: default never false-positives on either divider.
    softmax_sum_slack: float = 2.0
    #: Straggler scan period for hedging/timeouts.
    scan_interval_s: float = 0.005
    #: How long ``close(flush=True)`` waits for in-flight flights
    #: (retries included) before failing the remainder.
    drain_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_retries < 0 or self.canary_every < 0:
            raise ConfigError("retry and canary knobs must be non-negative")
        if self.quarantine_after < 0:
            raise ConfigError("quarantine_after must be non-negative")
        if min(self.hedge_after_s, self.timeout_s,
               self.softmax_sum_slack) < 0:
            raise ConfigError("policy durations and slacks must be >= 0")
        if self.scan_interval_s <= 0 or self.drain_timeout_s <= 0:
            raise ConfigError("scan and drain intervals must be positive")

    @property
    def needs_scan(self) -> bool:
        return self.hedge_after_s > 0 or self.timeout_s > 0


class ResponseVerifier:
    """Mode-aware invariant checks on returned raw words.

    Stateless after construction and cheap by design: one min/max pass
    (plus a row-sum fold for softmax) per batch — the heavyweight
    ground-truth compare lives in the loadgen verify report, not here.
    """

    def __init__(self, config: NacuConfig,
                 softmax_sum_slack: float = 2.0):
        fmt = config.io_fmt
        unit = 1 << fmt.fb
        self.unit_raw = unit
        self.softmax_sum_slack = softmax_sum_slack
        #: Inclusive raw output bounds per servable mode — the same
        #: clamps the datapath applies before the io.out crossing.
        self.bounds: Dict[FunctionMode, Tuple[int, int]] = {
            FunctionMode.SIGMOID: (0, unit),
            FunctionMode.TANH: (-unit, unit),
            FunctionMode.EXP: (0, unit),
            FunctionMode.SOFTMAX: (0, unit),
        }

    def check(self, mode: FunctionMode, out_raw: np.ndarray) -> Optional[str]:
        """``None`` when every invariant holds, else the failure reason."""
        if out_raw.size == 0:
            return None
        lo, hi = self.bounds[mode]
        low = int(out_raw.min())
        high = int(out_raw.max())
        if low < lo or high > hi:
            return (
                f"range: {mode.value} raw output spans [{low}, {high}], "
                f"outside the function range [{lo}, {hi}]"
            )
        if mode is FunctionMode.SOFTMAX and self.softmax_sum_slack > 0:
            width = out_raw.shape[-1]
            sums = out_raw.sum(axis=-1, dtype=np.int64)
            slack = int(np.ceil(self.softmax_sum_slack * width))
            drift = int(np.max(np.abs(sums - self.unit_raw)))
            if drift > slack:
                return (
                    f"rowsum: softmax row sum drifts {drift} raw LSBs from "
                    f"{self.unit_raw} (slack {slack} for width {width})"
                )
        return None


class CanaryBook:
    """Precomputed golden outputs for the interleaved canary slices.

    Goldens come from a private bit-accurate engine evaluated with
    faults scoped off and telemetry silenced — the reference bytes any
    healthy worker must reproduce (the fast path is raw-bit-identical
    by construction). One slice per ``(mode, softmax row width)`` is
    computed on first use and memoised; canary payloads are tiny.
    """

    ELEMENTS = 4

    def __init__(self, config: NacuConfig):
        self.config = config
        self.fmt = config.io_fmt
        self._engine: Optional[BatchEngine] = None
        self._slices: Dict[Tuple[str, int], Tuple[np.ndarray, np.ndarray]] = {}

    def _inputs(self, mode: FunctionMode, width: int) -> np.ndarray:
        fmt = self.fmt
        if mode is FunctionMode.SOFTMAX:
            row = np.linspace(fmt.raw_min, fmt.raw_max, width)
            return row.astype(np.int64).reshape(1, width)
        if mode is FunctionMode.EXP:  # domain: raw <= 0
            return np.array(
                [fmt.raw_min, fmt.raw_min // 2, fmt.raw_min // 7, 0],
                dtype=np.int64,
            )
        return np.array(
            [fmt.raw_min, fmt.raw_min // 3, fmt.raw_max // 3, fmt.raw_max],
            dtype=np.int64,
        )

    def slice_for(self, mode: FunctionMode,
                  width: int = 0) -> Tuple[np.ndarray, np.ndarray]:
        """``(input_raw, golden_raw)`` for one canary slice."""
        key = (mode.value, width)
        cached = self._slices.get(key)
        if cached is not None:
            return cached
        in_raw = self._inputs(mode, width)
        with use_plan(None), use_collector(None):
            if self._engine is None:
                self._engine = BatchEngine(config=self.config, fast=False)
            golden = evaluate_fused(self._engine, mode, in_raw)
        self._slices[key] = (in_raw, golden)
        return in_raw, golden


class Flight:
    """One batch's journey through dispatch attempts to resolution."""

    __slots__ = (
        "batch", "tel", "traces", "enqueue_ns", "tracer", "payload",
        "canary_golden", "canary_len", "lock", "done", "attempts",
        "retries_used", "had_failure", "hedged", "hedge_attempt",
        "first_dispatch_ns", "last_dispatch_ns", "worker_ids",
    )

    def __init__(self, batch: Batch, tel, traces, enqueue_ns, tracer,
                 payload: np.ndarray, canary_golden: Optional[np.ndarray],
                 canary_len: int):
        self.batch = batch
        self.tel = tel
        self.traces = traces
        self.enqueue_ns = enqueue_ns
        self.tracer = tracer
        #: The fused raw words shipped on every attempt — the batch's
        #: payload plus the trailing canary slice, gathered once.
        self.payload = payload
        self.canary_golden = canary_golden
        self.canary_len = canary_len
        #: Re-entrant: the reply path re-dispatches while holding it.
        self.lock = threading.RLock()
        self.done = False
        self.attempts = 0
        self.retries_used = 0
        self.had_failure = False
        self.hedged = False
        self.hedge_attempt: Optional[int] = None
        self.first_dispatch_ns = 0
        self.last_dispatch_ns = 0
        self.worker_ids: List[int] = []

    def split_reply(
        self, out_raw: np.ndarray
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """``(request outputs, canary outputs or None)``."""
        if not self.canary_len:
            return out_raw, None
        return out_raw[:-self.canary_len], out_raw[-self.canary_len:]


class ResilienceManager:
    """Policy brain bolted onto a :class:`~repro.serve.pool.WorkerPool`.

    The pool calls in at three points — batch launch, worker reply,
    worker crash — and exposes the transport back (``_send_flight``,
    ``_quarantine``, ``_count``). Everything here is decision-making
    and accounting; no pipe or process is touched directly.
    """

    def __init__(self, pool, policy: ResponsePolicy):
        self.pool = pool
        self.policy = policy
        self.verifier = (
            ResponseVerifier(pool.config, policy.softmax_sum_slack)
            if policy.verify else None
        )
        self.canaries = (
            CanaryBook(pool.config) if policy.canary_every > 0 else None
        )
        self._since_canary = 0
        self._flights: set = set()
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._strikes: Dict[int, int] = {}
        self._stop = threading.Event()
        self._scanner: Optional[threading.Thread] = None
        if policy.needs_scan:
            self._scanner = threading.Thread(
                target=self._scan_loop, name="nacu-pool-resilience",
                daemon=True,
            )
            self._scanner.start()

    # ------------------------------------------------------------------
    # Launch (dispatcher thread)
    # ------------------------------------------------------------------
    def launch(self, batch: Batch, tracer) -> None:
        """Begin one batch, arm its flight, dispatch the first attempt."""
        pool = self.pool
        dispatch_ns = time.perf_counter_ns()
        tel, traces, enqueue_ns = batch.begin(
            pool.collector, tracer, pool.slo, dispatch_ns=dispatch_ns
        )
        payload = batch.fused_raw()
        canary_golden: Optional[np.ndarray] = None
        canary_len = 0
        if self.canaries is not None:
            self._since_canary += 1
            if self._since_canary >= self.policy.canary_every:
                self._since_canary = 0
                width = (
                    payload.shape[-1]
                    if batch.mode is FunctionMode.SOFTMAX else 0
                )
                in_raw, golden = self.canaries.slice_for(batch.mode, width)
                payload = np.concatenate(
                    [payload, in_raw.astype(payload.dtype, copy=False)]
                )
                canary_golden = golden
                canary_len = in_raw.shape[0]
                pool._count("serve.resilience.canaries")
        flight = Flight(batch, tel, traces, enqueue_ns, tracer, payload,
                        canary_golden, canary_len)
        with self._lock:
            self._flights.add(flight)
        if not pool._send_flight(flight, wait=True):
            pool._count("serve.pool.no_live_workers")
            self._finish_fail(
                flight, WorkerCrashError("no live workers to dispatch to")
            )

    # ------------------------------------------------------------------
    # Replies (receiver threads)
    # ------------------------------------------------------------------
    def on_ok(self, handle, pending, out_raw: np.ndarray, sink) -> None:
        """A worker answered: verify, then resolve / retry / fail."""
        pool = self.pool
        flight: Flight = pending.flight
        with flight.lock:
            if flight.done:
                pool._count("serve.resilience.stale_replies")
                return
            body, canary_out = flight.split_reply(out_raw)
            reason: Optional[str] = None
            if canary_out is not None and not np.array_equal(
                canary_out, flight.canary_golden
            ):
                pool._count("serve.resilience.canary_failures")
                reason = (
                    f"canary: worker {handle.worker_id} returned wrong bytes "
                    f"for the golden canary slice"
                )
            if reason is None and self.verifier is not None:
                reason = self.verifier.check(flight.batch.mode, body)
            if reason is None:
                flight.done = True
                hedge_won = (
                    flight.hedged
                    and flight.hedge_attempt is not None
                    and pending.attempt >= flight.hedge_attempt
                )
            else:
                self._on_detect(flight, pending, handle, reason)
                return
        # Success epilogue outside the flight lock: finish() scatters and
        # resolves futures — no reason to serialise it against the scan.
        if flight.had_failure:
            pool._count(
                "serve.resilience.corrected", len(flight.batch.requests)
            )
        if flight.hedged:
            pool._count(
                "serve.resilience.hedge_wins" if hedge_won
                else "serve.resilience.hedge_losses"
            )
        try:
            flight.batch.finish(
                body, pool.io_fmt, tel=flight.tel, traces=flight.traces,
                enqueue_ns=flight.enqueue_ns, slo=pool.slo,
                tracer=flight.tracer, dispatch_ns=pending.dispatch_ns,
                sink=sink,
            )
        except BaseException as exc:  # noqa: BLE001 — forwarded
            flight.batch.fail(
                exc, traces=flight.traces, slo=pool.slo,
                tracer=flight.tracer,
            )
        self._unregister(flight)

    def on_err(self, handle, pending, exc: BaseException) -> None:
        """A worker's evaluation raised: strike it, retry or forward."""
        flight: Flight = pending.flight
        self.pool._count("serve.resilience.worker_errors")
        with flight.lock:
            if flight.done:
                self.pool._count("serve.resilience.stale_replies")
                return
            flight.had_failure = True
            self._strike(handle)
            if not self._retry(flight, exclude={handle.worker_id}):
                flight.done = True
                self._fail_now(flight, exc)

    def on_crash(self, handle, pendings, exc=None) -> None:
        """The worker died holding these flights: retry or fail each.

        ``exc`` is the pool's forensic :class:`WorkerCrashError` (seqs +
        ring slot state); flights that exhaust their retry budget fail
        with it, so the caller sees the same diagnosis a policy-free
        pool would raise.
        """
        if exc is None:
            exc = WorkerCrashError(
                f"worker {handle.worker_id} (pid {handle.process.pid}) died "
                f"with {len(pendings)} batch(es) in flight"
            )
        for pending in pendings:
            flight: Flight = pending.flight
            with flight.lock:
                if flight.done:
                    continue
                flight.had_failure = True
                if not self._retry(flight, exclude={handle.worker_id}):
                    flight.done = True
                    self._fail_now(flight, exc)

    # ------------------------------------------------------------------
    # Failure machinery (flight lock held unless noted)
    # ------------------------------------------------------------------
    def _on_detect(self, flight: Flight, pending, handle,
                   reason: str) -> None:
        """A verified-bad reply: count, time the detection, act."""
        pool = self.pool
        pool._count("serve.resilience.verify_failures")
        if flight.tel is not None:
            flight.tel.observe_span(
                "serve.resilience.detect",
                time.perf_counter_ns() - pending.dispatch_ns,
            )
        flight.had_failure = True
        self._strike(handle)
        if not self._retry(flight, exclude={handle.worker_id}):
            flight.done = True
            self._fail_now(flight, ResponseVerificationError(reason))

    def _retry(self, flight: Flight, exclude) -> bool:
        """One bounded re-dispatch, preferring a different worker."""
        if flight.retries_used >= self.policy.max_retries:
            return False
        flight.retries_used += 1
        self.pool._count("serve.resilience.retries")
        return self.pool._send_flight(flight, exclude=exclude)

    def _fail_now(self, flight: Flight, exc: BaseException) -> None:
        """Terminal failure: budget burn, loud futures, unregister."""
        self.pool._count("serve.resilience.failed")
        flight.batch.fail(
            exc, traces=flight.traces, slo=self.pool.slo,
            tracer=flight.tracer,
        )
        self._unregister(flight)

    def _finish_fail(self, flight: Flight, exc: BaseException) -> None:
        """Fail a flight that never reached a worker (no retry budget)."""
        with flight.lock:
            flight.done = True
        flight.batch.fail(
            exc, traces=flight.traces, slo=self.pool.slo,
            tracer=flight.tracer,
        )
        self._unregister(flight)

    def _strike(self, handle) -> None:
        if self.policy.quarantine_after <= 0:
            return
        self.pool._count("serve.resilience.strikes")
        with self._lock:
            strikes = self._strikes.get(handle.worker_id, 0) + 1
            self._strikes[handle.worker_id] = strikes
            quarantine = strikes >= self.policy.quarantine_after
            if quarantine:
                self._strikes[handle.worker_id] = 0
        if quarantine and self.pool._quarantine(handle):
            self.pool._count("serve.resilience.quarantines")

    # ------------------------------------------------------------------
    # Straggler scan (dedicated thread; only runs when the policy hedges
    # or times out)
    # ------------------------------------------------------------------
    def _scan_loop(self) -> None:
        policy = self.policy
        hedge_ns = int(policy.hedge_after_s * 1e9)
        timeout_ns = int(policy.timeout_s * 1e9)
        while not self._stop.wait(policy.scan_interval_s):
            now = time.perf_counter_ns()
            with self._lock:
                flights = list(self._flights)
            for flight in flights:
                timed_out = hedge = False
                with flight.lock:
                    if flight.done or not flight.attempts:
                        continue
                    if timeout_ns and now - flight.first_dispatch_ns > timeout_ns:
                        flight.done = True
                        timed_out = True
                    elif (
                        hedge_ns and not flight.hedged
                        and now - flight.last_dispatch_ns > hedge_ns
                    ):
                        flight.hedged = True
                        flight.hedge_attempt = flight.attempts
                        hedge = True
                if timed_out:
                    self.pool._count("serve.resilience.timeouts")
                    flight.batch.fail(
                        ResponseTimeoutError(
                            f"batch unanswered after {policy.timeout_s:g}s "
                            f"across {flight.attempts} attempt(s) on "
                            f"workers {flight.worker_ids}"
                        ),
                        traces=flight.traces, slo=self.pool.slo,
                        tracer=flight.tracer,
                    )
                    self._unregister(flight)
                elif hedge:
                    self.pool._count("serve.resilience.hedges")
                    self.pool._send_flight(
                        flight, exclude=set(flight.worker_ids)
                    )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _unregister(self, flight: Flight) -> None:
        with self._lock:
            self._flights.discard(flight)
            if not self._flights:
                self._drained.notify_all()

    def drain(self) -> None:
        """Wait for every flight to resolve, then stop the scanner.

        Called by ``close(flush=True)`` *before* the workers get their
        close message — retries still have live workers to land on. A
        flight still unresolved at the deadline fails loudly with
        :class:`ResponseTimeoutError`; nothing ever hangs a caller.
        """
        deadline = time.monotonic() + self.policy.drain_timeout_s
        with self._lock:
            while self._flights:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._drained.wait(remaining):
                    break
            leftovers = list(self._flights)
        for flight in leftovers:
            with flight.lock:
                if flight.done:
                    continue
                flight.done = True
            self.pool._count("serve.resilience.timeouts")
            flight.batch.fail(
                ResponseTimeoutError("pool closed before the batch resolved"),
                traces=flight.traces, slo=self.pool.slo,
                tracer=flight.tracer,
            )
            self._unregister(flight)
        self._stop.set()
        if self._scanner is not None:
            self._scanner.join()
