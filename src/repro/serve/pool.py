"""The multi-process worker pool: N forked engines, one table image.

:class:`~repro.serve.server.InferenceServer` coalesces beautifully but
evaluates every fused batch in one interpreter — throughput is pinned to
a single core however many tables are shared. :class:`WorkerPool` is the
scale-out tier on top of the same building blocks:

* the parent **publishes** the config's compiled tables once into a
  :class:`~repro.serve.store.SharedTableStore` and forks N worker
  processes that attach read-only — N engines, one physical table image
  (the 0.11 ms zero-copy attach measured in ``serve_table_store``);
* the parent keeps the :class:`~repro.serve.batcher.MicroBatcher` and
  ships **whole fused batches**, so the micro-batcher's coalescing
  survives the process hop: one message per batch, never one per
  request. Under the default ``transport="ring"`` the payload never
  crosses the pipe at all: the parent gathers the fused raw words
  straight into a free slot of a per-worker
  :class:`~repro.serve.store.SlotRing` (preallocated SPSC request/
  response rings in ``multiprocessing.shared_memory``) and sends only a
  tiny doorbell — ``(seq, mode, slot, shape)`` — over the duplex pipe;
  the worker evaluates from a zero-copy view and writes the result into
  the paired response slot. No pickle, no intermediate copies; slot
  framing carries generation/commit words so a frame torn by a SIGKILL
  mid-write is detected, never served. ``transport="pipe"`` keeps the
  original pickled-payload messages — and even under ``ring`` the pipe
  carries any batch too large for a slot (``serve.pool.ring_oversize``)
  or arriving while every slot is in flight (``serve.pool.ring_full``),
  so the ring bounds memory, not admission;
* batches route to the **least-loaded** worker (fewest outstanding
  elements), and every response is raw-bit-identical to the serial
  engine because both sides run the same
  :func:`~repro.serve.batcher.evaluate_fused` kernel over the same
  shared tables;
* a worker that dies mid-flight fails its batches loudly with
  :class:`~repro.errors.WorkerCrashError` (counted under
  ``serve.pool.worker_deaths``) and is forked again in place
  (``restart=True``), so one crash never wedges the queue.

Observability stays exact across the process boundary. Request
lifecycle metrics — ``serve.requests`` / ``serve.shed`` counters,
``serve.queue_wait`` spans, per-mode ``serve.latency.<mode>`` quantiles,
SLO good/bad/shed accounting and sampled traces — are all recorded in
the **parent**, where requests are admitted and futures resolve, so both
timestamps of every latency come from one clock and the numbers are
byte-identical to the single-process server's accounting. Workers keep
their own private :class:`~repro.telemetry.Collector` for the
engine/compile/datapath counters their evaluations produce;
:meth:`WorkerPool.telemetry_snapshot` folds parent and worker snapshots
through the existing exact
:func:`~repro.telemetry.merge_snapshots` — the same totals one collector
would have held had it seen all the traffic. Sampled traces cross the
hop too: a traced batch runs under a worker-side
:class:`~repro.telemetry.trace.StageSink` whose event list rides back
with the reply and fans out into the member traces (stage stamps are
``CLOCK_MONOTONIC``, comparable across processes on one host).
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.compile.cache import TableCache
from repro.errors import (
    BackpressureError,
    ServeError,
    ServerClosedError,
    WorkerCrashError,
)
from repro.faults import inject as _inject
from repro.faults.plan import FaultPlan
from repro.nacu.config import FunctionMode, NacuConfig
from repro.serve.batcher import (
    SERVABLE_MODES,
    Batch,
    MicroBatcher,
    build_request,
    evaluate_fused,
)
from repro.serve.resilience import ResilienceManager, ResponsePolicy
from repro.serve.store import (
    AttachedTableSource,
    RingManifest,
    SharedTableStore,
    SlotRing,
)
from repro.telemetry import collector as _telemetry
from repro.telemetry import trace as _tracing
from repro.telemetry.collector import Collector, merge_snapshots
from repro.telemetry.slo import SLOAccountant, SLOPolicy

_MODE_BY_NAME = {mode.value: mode for mode in SERVABLE_MODES}


# ----------------------------------------------------------------------
# The worker side (runs in the forked child)
# ----------------------------------------------------------------------
def _picklable(exc: BaseException) -> BaseException:
    """``exc`` if it survives the pipe, else a faithful ServeError."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 — any pickle failure downgrades
        return ServeError(f"{type(exc).__name__}: {exc}")


def _worker_main(conn, config: NacuConfig, fast: bool, manifest,
                 worker_id: int, fault_plan=None, rings=None) -> None:
    """One worker process: attach, evaluate batches, report, drain.

    The worker installs a private process-wide collector so every
    counter its engine, table cache and store attach produce is captured
    locally and shipped back in the final snapshot — the parent merges
    them exactly. Messages are processed strictly in order, so by the
    time the ``close`` reply goes out every earlier batch has already
    been answered: graceful drain is a property of the pipe's FIFO
    ordering, not of extra bookkeeping.

    ``rings`` (a :class:`~repro.serve.store.RingManifest`) attaches the
    zero-copy lane: an ``rbatch`` doorbell names a slot whose payload is
    read in place from the request ring and whose result is written in
    place to the response ring — the same :func:`evaluate_fused` kernel
    either way, so the bytes cannot differ between transports.

    ``fault_plan`` is this worker's private shard of the pool's chaos
    plan, armed *here* — after the fork, in the child only — so the
    shared table image the parent published stays pristine and the
    parent process never injects. A restarted worker re-arms the same
    shard: its fault stream replays from the top, exactly like
    re-arming any plan.
    """
    # Local import keeps the engine (and its compile machinery) out of
    # the hot import path of clients that only ever submit.
    from repro.engine import BatchEngine

    collector = Collector()
    _telemetry.set_collector(collector)
    # Whatever plan the *parent* had armed at fork time is its business,
    # not this worker's — injection here is opt-in via the shard.
    _inject.disarm()
    request_ring = response_ring = None
    if rings is not None:
        request_ring = SlotRing.attach(
            rings.request_name, "req", rings.slots, rings.slot_elements
        )
        response_ring = SlotRing.attach(
            rings.response_name, "resp", rings.slots, rings.slot_elements
        )
    source = AttachedTableSource(manifest) if manifest is not None else None
    cache = TableCache(source=source) if fast else None
    engine = BatchEngine(
        config=config, fast=fast, table_cache=cache, collector=collector
    )
    if fault_plan is not None:
        _inject.arm(fault_plan)
        collector.count("serve.pool.worker_armed")
    collector.count("serve.pool.worker_started")
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent vanished — nothing left to serve
            kind = message[0]
            if kind == "batch":
                _, seq, mode_value, raw, traced = message
                try:
                    sink = _tracing.StageSink() if traced else None
                    with _tracing.use_sink(sink):
                        out = evaluate_fused(
                            engine, FunctionMode(mode_value), raw
                        )
                    collector.count("serve.pool.ipc_bytes", out.nbytes)
                    reply = (
                        "ok", seq, out,
                        sink.events if sink is not None else None,
                        sink.faults if sink is not None else None,
                    )
                except BaseException as exc:  # noqa: BLE001 — forwarded
                    reply = ("err", seq, _picklable(exc))
                conn.send(reply)
            elif kind == "rbatch":
                _, seq, mode_value, slot, shape, traced = message
                try:
                    raw = request_ring.read_frame(slot, seq, shape)
                    sink = _tracing.StageSink() if traced else None
                    with _tracing.use_sink(sink):
                        out = evaluate_fused(
                            engine, FunctionMode(mode_value), raw
                        )
                    frame = response_ring.open_frame(slot, seq, out.size)
                    np.copyto(frame, out.reshape(-1))
                    response_ring.commit_frame(slot)
                    collector.count("serve.pool.ipc_bytes", out.nbytes)
                    reply = (
                        "rok", seq, slot,
                        sink.events if sink is not None else None,
                        sink.faults if sink is not None else None,
                    )
                except BaseException as exc:  # noqa: BLE001 — forwarded
                    reply = ("err", seq, _picklable(exc))
                conn.send(reply)
            elif kind == "snapshot":
                conn.send(("snapshot", message[1], collector.snapshot()))
            elif kind == "close":
                conn.send(("final", collector.snapshot()))
                break
    finally:
        if source is not None:
            source.close()
        if request_ring is not None:
            request_ring.close()
        if response_ring is not None:
            response_ring.close()
        conn.close()


# ----------------------------------------------------------------------
# The parent side
# ----------------------------------------------------------------------
class _Pending:
    """One batch in flight to a worker, with its observability context."""

    __slots__ = ("batch", "tel", "traces", "enqueue_ns", "dispatch_ns",
                 "tracer", "flight", "attempt", "slot", "shape")

    def __init__(self, batch, tel, traces, enqueue_ns, dispatch_ns, tracer,
                 flight=None, attempt=0):
        self.batch = batch
        self.tel = tel
        self.traces = traces
        self.enqueue_ns = enqueue_ns
        self.dispatch_ns = dispatch_ns
        self.tracer = tracer
        #: The resilience :class:`~repro.serve.resilience.Flight` this
        #: attempt belongs to, or ``None`` on a policy-free pool.
        self.flight = flight
        #: This attempt's index within the flight (0 = primary).
        self.attempt = attempt
        #: The ring slot this attempt occupies (None: pipe transport).
        self.slot = None
        #: The payload shape — what the response frame reshapes to.
        self.shape: Optional[Tuple[int, ...]] = None


class _WorkerHandle:
    """Parent-side state for one worker process."""

    __slots__ = ("worker_id", "process", "conn", "lock", "send_lock",
                 "in_flight", "outstanding", "receiver", "final_snapshot",
                 "dead", "quarantined", "request_ring", "response_ring",
                 "free_slots")

    def __init__(self, worker_id: int, process, conn):
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        #: Guards ``in_flight`` / ``outstanding`` / ``free_slots``
        #: (dispatcher vs receiver).
        self.lock = threading.Lock()
        #: Serialises writers on the pipe (dispatcher, snapshots, close).
        self.send_lock = threading.Lock()
        self.in_flight: Dict[int, _Pending] = {}
        self.outstanding = 0
        self.receiver: Optional[threading.Thread] = None
        self.final_snapshot: Optional[dict] = None
        self.dead = False
        #: Set (under ``send_lock``) when the resilience policy benches
        #: this worker: no new batches, graceful drain, then replacement.
        self.quarantined = False
        #: This worker's paired payload rings (None: pipe transport).
        self.request_ring: Optional[SlotRing] = None
        self.response_ring: Optional[SlotRing] = None
        #: Free slot indices, shared by both rings (a request slot and
        #: its response slot are claimed and released together).
        self.free_slots: List[int] = []


class WorkerPool:
    """N forked worker processes serving one NACU configuration.

    >>> from repro.serve import WorkerPool
    >>> with WorkerPool(n_bits=12, workers=2) as pool:
    ...     future = pool.submit(0.5, mode="sigmoid")
    ...     round(future.result(), 3)
    0.622

    Same client contract as :class:`~repro.serve.server.InferenceServer`
    (``submit()`` → ``Future``, :class:`BackpressureError` sheds,
    ``close(flush=True)`` drains) — swapping one for the other changes
    where batches evaluate, never what bytes come back.
    """

    def __init__(
        self,
        *,
        config: Optional[NacuConfig] = None,
        n_bits: Optional[int] = None,
        workers: int = 2,
        fast: bool = True,
        share_tables: bool = True,
        restart: bool = True,
        transport: str = "ring",
        ring_slots: int = 8,
        ring_slot_elements: Optional[int] = None,
        max_batch_elements: int = 4096,
        max_delay_us: float = 200.0,
        max_pending_elements: int = 1 << 20,
        publish_cache: Optional[TableCache] = None,
        mp_context: Optional[str] = None,
        collector=None,
        tracer=None,
        slo=None,
        resilience: Optional[ResponsePolicy] = None,
        dispatch_wait_s: float = 0.0,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if workers < 1:
            raise ServeError("the pool needs at least one worker")
        if dispatch_wait_s < 0:
            raise ServeError("dispatch_wait_s must be non-negative")
        if config is None:
            config = (
                NacuConfig.for_bits(n_bits) if n_bits is not None
                else NacuConfig()
            )
        elif n_bits is not None:
            raise ServeError("pass either a config or n_bits, not both")
        if transport not in ("ring", "pipe"):
            raise ServeError(
                f"unknown transport {transport!r}; choose 'ring' (zero-copy "
                f"shared-memory slots) or 'pipe' (pickled payloads)"
            )
        if ring_slots < 1:
            raise ServeError("ring_slots must be positive")
        self.config = config
        self.workers = workers
        self.fast = fast
        self.restart = restart
        #: Which lane fused payloads take to the workers. ``"ring"``
        #: (the default) is the zero-copy shared-memory transport with
        #: the pipe as oversize/full-ring fallback; ``"pipe"`` is the
        #: original pickled-payload transport, kept as the differential
        #: -testing oracle.
        self.transport = transport
        self._ring_slots = ring_slots
        # Two batch ceilings per slot: room for the batcher's overflow
        # regime (a group may exceed the ceiling by one request) and for
        # the resilience canary slice appended to the payload.
        self._ring_slot_elements = (
            int(ring_slot_elements) if ring_slot_elements is not None
            else 2 * max_batch_elements
        )
        if self._ring_slot_elements < 1:
            raise ServeError("ring_slot_elements must be positive")
        #: Per-worker chaos shards: worker ``k`` always arms shard ``k``,
        #: across restarts too — position-independent seeds make the
        #: injected stream a property of the slot, not of pool history.
        self._plan_shards = (
            fault_plan.shard(workers) if fault_plan is not None else None
        )
        self.collector = collector
        self.tracer = tracer
        self.slo = (
            SLOAccountant(slo, collector=collector)
            if isinstance(slo, SLOPolicy) else slo
        )
        if mp_context is None:
            # fork is the whole point (attach without re-import); spawn
            # works too — everything crossing the boundary pickles.
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(mp_context)

        # Publish once, before any fork: every worker attaches to this
        # one image. A format too wide for the cache ceiling cannot be
        # published — workers then compile privately (fast=True) or run
        # the datapath (fast=False), exactly like a local engine.
        self._store: Optional[SharedTableStore] = None
        self._manifest = None
        if fast and share_tables:
            store = SharedTableStore()
            try:
                self._manifest = store.publish(
                    config,
                    cache=publish_cache if publish_cache is not None
                    else TableCache(),
                )
                self._store = store
            except ServeError:
                store.unlink()
                self._count("serve.pool.publish_fallback")

        self._batcher = MicroBatcher(
            max_batch_elements=max_batch_elements,
            max_delay_us=max_delay_us,
            max_pending_elements=max_pending_elements,
        )
        self._cond = threading.Condition()
        self._closed = False
        self._flush_on_close = True
        self._seq = itertools.count()
        self._snapshot_waits: Dict[int, list] = {}
        self._handles: List[_WorkerHandle] = []
        #: Final telemetry snapshots of workers retired by quarantine —
        #: kept so merged accounting stays exact across replacements.
        self._retired_snapshots: List[dict] = []
        self._dispatch_wait_s = dispatch_wait_s
        self._resilience: Optional[ResilienceManager] = None
        # Fork every worker before the dispatcher thread exists: forking
        # a single-threaded parent is the only shape with no inherited-
        # lock hazard (restarts after a crash fork from a threaded
        # parent — the child only touches its own pipe and numpy).
        for worker_id in range(workers):
            self._handles.append(self._spawn(worker_id))
        self._count("serve.pool.workers", workers)
        for handle in self._handles:
            self._start_receiver(handle)
        if resilience is not None:
            self._resilience = ResilienceManager(self, resilience)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="nacu-pool-dispatch", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # The client API (mirrors InferenceServer)
    # ------------------------------------------------------------------
    @property
    def io_fmt(self):
        """The served fixed-point I/O format (``build_request`` contract)."""
        return self.config.io_fmt

    def submit(
        self,
        x,
        mode: Union[FunctionMode, str] = FunctionMode.SIGMOID,
        axis: int = -1,
    ) -> Future:
        """Enqueue one evaluation; the future resolves in request kind."""
        if isinstance(mode, str):
            try:
                mode = _MODE_BY_NAME[mode]
            except KeyError:
                raise ServeError(
                    f"unknown mode {mode!r}; servable modes: "
                    f"{sorted(_MODE_BY_NAME)}"
                ) from None
        future: Future = Future()
        request = build_request(future, x, mode, axis, self)
        with self._cond:
            if self._closed:
                raise ServerClosedError("submit() after close()")
            was_idle = not self._batcher
            if not self._batcher.offer(request):
                self._count("serve.shed")
                if self.slo is not None:
                    self.slo.record_shed()
                raise BackpressureError(
                    f"pending pool full "
                    f"({self._batcher.pending_elements} elements held, "
                    f"{request.elements} more would exceed "
                    f"{self._batcher.max_pending_elements}); retry later"
                )
            if was_idle or self._batcher.has_full_group:
                self._cond.notify()
        return future

    def close(self, flush: bool = True) -> None:
        """Drain (or fail) the queue, retire the workers, join everything.

        With ``flush`` (the default) every admitted request still
        resolves: the dispatcher ships the remaining batches, each
        worker answers them **before** its final snapshot (pipe FIFO),
        and only then do the processes exit. ``flush=False`` fails
        requests that never reached a worker with
        :class:`ServerClosedError`; batches already in flight complete.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._flush_on_close = flush
            self._cond.notify_all()
        self._dispatcher.join()
        if self._resilience is not None:
            # Every flight resolves (retries included) while the workers
            # are still alive to land them on; only then do the workers
            # get their close message below.
            self._resilience.drain()
        with self._cond:
            # Restarts are decided under this lock and suppressed once
            # closed, so this snapshot is the final roster: every handle
            # in it has a started receiver thread.
            handles = list(self._handles)
        for handle in handles:
            if not handle.dead:
                try:
                    with handle.send_lock:
                        handle.conn.send(("close",))
                except (OSError, BrokenPipeError):
                    pass  # already dead — its receiver handles the fallout
        for handle in handles:
            if handle.receiver is not None:
                handle.receiver.join()
            handle.process.join(timeout=30)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join()
            try:
                handle.conn.close()
            except OSError:
                pass
        for handle in handles:
            self._release_rings(handle)
        if self._store is not None:
            self._store.unlink()

    @property
    def closed(self) -> bool:
        return self._closed

    def alive_workers(self) -> int:
        """How many workers are currently live."""
        return sum(
            1 for handle in self._handles
            if not handle.dead and handle.process.is_alive()
        )

    def worker_pids(self) -> List[int]:
        """The live workers' process ids (smoke checks kill these)."""
        return [
            handle.process.pid for handle in self._handles
            if not handle.dead and handle.process.is_alive()
        ]

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def telemetry_snapshot(self, timeout: float = 10.0) -> dict:
        """Parent + every worker, folded through ``merge_snapshots``.

        Counters, histograms, timers, cycles and quantile buckets all
        merge exactly, so the result is byte-identical to what a single
        collector would have held. On a live pool each worker is asked
        over its pipe; after :meth:`close` the final snapshots the drain
        collected are used — no process needs to be alive.
        """
        snapshots = []
        tel = _telemetry.resolve(self.collector)
        if tel is not None:
            snapshots.append(tel.snapshot())
        snapshots.extend(self.worker_snapshots(timeout=timeout))
        return merge_snapshots(snapshots)

    def worker_snapshots(self, timeout: float = 10.0) -> List[dict]:
        """One telemetry snapshot per worker (live request or final).

        Includes the final snapshots of workers retired by quarantine —
        their replacement occupies the same slot, but the retired
        counts still belong to the pool's exact total.
        """
        out = list(self._retired_snapshots)
        for handle in self._handles:
            if handle.final_snapshot is not None:
                out.append(handle.final_snapshot)
                continue
            if handle.dead:
                continue  # crashed before draining: its metrics are gone
            if handle.quarantined:
                continue  # draining: its final lands in the retired list
            seq = next(self._seq)
            event = threading.Event()
            slot: list = [event, None]
            self._snapshot_waits[seq] = slot
            try:
                with handle.send_lock:
                    handle.conn.send(("snapshot", seq))
            except (OSError, BrokenPipeError):
                self._snapshot_waits.pop(seq, None)
                continue
            if not event.wait(timeout):
                self._snapshot_waits.pop(seq, None)
                raise ServeError(
                    f"worker {handle.worker_id} did not answer a snapshot "
                    f"request within {timeout:g}s"
                )
            out.append(slot[1])
        return out

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, worker_id: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        shard = (
            self._plan_shards[worker_id]
            if self._plan_shards is not None else None
        )
        # Fresh rings per process generation: a restarted worker never
        # inherits frames (possibly torn) from its predecessor.
        rings = None
        request_ring = response_ring = None
        if self.transport == "ring":
            request_ring = SlotRing.create(
                "req", self._ring_slots, self._ring_slot_elements
            )
            response_ring = SlotRing.create(
                "resp", self._ring_slots, self._ring_slot_elements
            )
            rings = RingManifest(
                request_name=request_ring.name,
                response_name=response_ring.name,
                slots=self._ring_slots,
                slot_elements=self._ring_slot_elements,
            )
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.config, self.fast, self._manifest,
                  worker_id, shard, rings),
            name=f"nacu-pool-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        # Drop the parent's copy of the child end: EOF on parent_conn
        # then means exactly "the worker is gone".
        child_conn.close()
        handle = _WorkerHandle(worker_id, process, parent_conn)
        handle.request_ring = request_ring
        handle.response_ring = response_ring
        if rings is not None:
            handle.free_slots = list(range(self._ring_slots))
        return handle

    def _start_receiver(self, handle: _WorkerHandle) -> None:
        handle.receiver = threading.Thread(
            target=self._receive_loop, args=(handle,),
            name=f"nacu-pool-recv-{handle.worker_id}", daemon=True,
        )
        handle.receiver.start()

    def _receive_loop(self, handle: _WorkerHandle) -> None:
        while True:
            try:
                message = handle.conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "ok":
                _, seq, out_raw, events, faults = message
                pending = self._pop_pending(handle, seq)
                if pending is None:
                    continue
                self._deliver(handle, pending, out_raw, events, faults)
            elif kind == "rok":
                _, seq, slot, events, faults = message
                pending = self._pop_pending(handle, seq)
                try:
                    if pending is None:
                        continue
                    try:
                        out_raw = handle.response_ring.read_frame(
                            slot, seq, pending.shape
                        )
                    except ServeError as exc:
                        # A frame that fails its commit check is refused,
                        # loudly — the resilience layer may retry it, a
                        # bare pool fails the futures.
                        self._count("serve.pool.torn_frames")
                        if pending.flight is not None:
                            self._resilience.on_err(handle, pending, exc)
                        else:
                            pending.batch.fail(
                                exc, traces=pending.traces, slo=self.slo,
                                tracer=pending.tracer,
                            )
                        continue
                    if pending.batch.emits_raw:
                        # FxArray futures keep the raw words: unshare
                        # them before the slot is recycled underneath.
                        out_raw = np.array(out_raw)
                    self._deliver(handle, pending, out_raw, events, faults)
                finally:
                    # Every reply frees its slot pair — stale replies
                    # (a lost hedge race) included, or the ring leaks.
                    self._free_slot(handle, slot)
            elif kind == "err":
                _, seq, exc = message
                pending = self._pop_pending(handle, seq)
                if pending is None:
                    continue
                # An erring ring dispatch consumed its request frame and
                # wrote no response: the slot pair is reusable now.
                self._free_slot(handle, pending.slot)
                if pending.flight is not None:
                    self._resilience.on_err(handle, pending, exc)
                    continue
                pending.batch.fail(
                    exc, traces=pending.traces, slo=self.slo,
                    tracer=pending.tracer,
                )
            elif kind == "snapshot":
                slot = self._snapshot_waits.pop(message[1], None)
                if slot is not None:
                    slot[1] = message[2]
                    slot[0].set()
            elif kind == "final":
                handle.final_snapshot = message[1]
                break
        self._on_worker_exit(handle)

    def _pop_pending(self, handle: _WorkerHandle, seq: int):
        with handle.lock:
            pending = handle.in_flight.pop(seq, None)
            if pending is not None:
                handle.outstanding -= pending.batch.elements
        return pending

    def _deliver(self, handle: _WorkerHandle, pending: _Pending,
                 out_raw, events, faults) -> None:
        """Route one answered batch: resilience check or straight finish.

        ``out_raw`` is either the unpickled pipe payload or a read-only
        view over the worker's response-ring frame — by the time this
        returns, every future has resolved (floats copy on scatter,
        FxArrays were unshared by the caller), so the caller may recycle
        the frame immediately.
        """
        sink = None
        if events is not None:
            sink = _tracing.StageSink()
            sink.events = events
            sink.faults = faults or {}
        if pending.flight is not None:
            self._resilience.on_ok(handle, pending, out_raw, sink)
            return
        try:
            pending.batch.finish(
                out_raw, self.io_fmt, tel=pending.tel,
                traces=pending.traces, enqueue_ns=pending.enqueue_ns,
                slo=self.slo, tracer=pending.tracer,
                dispatch_ns=pending.dispatch_ns, sink=sink,
            )
        except BaseException as exc:  # noqa: BLE001 — forwarded
            pending.batch.fail(
                exc, traces=pending.traces, slo=self.slo,
                tracer=pending.tracer,
            )

    def _free_slot(self, handle: _WorkerHandle, slot) -> None:
        """Return one slot pair to the worker's free list."""
        if slot is None or handle.request_ring is None:
            return
        with handle.lock:
            handle.free_slots.append(slot)

    def _on_worker_exit(self, handle: _WorkerHandle) -> None:
        """Receiver epilogue: clean drain is a no-op, a crash is loud."""
        handle.dead = True
        with handle.lock:
            orphans = list(handle.in_flight.items())
            handle.in_flight.clear()
            handle.outstanding = 0
        crashed = handle.final_snapshot is None and not self._closed
        if orphans or crashed:
            self._count("serve.pool.worker_deaths")
            exc = WorkerCrashError(
                f"worker {handle.worker_id} (pid {handle.process.pid}) died "
                f"with {len(orphans)} batch(es) in flight",
                worker_id=handle.worker_id,
                in_flight_seqs=[seq for seq, _ in orphans],
                ring_slots=self._ring_forensics(handle, orphans),
            )
            flighted = [p for _, p in orphans if p.flight is not None]
            for _, pending in orphans:
                if pending.flight is not None:
                    continue  # the resilience manager decides its fate
                pending.batch.fail(
                    exc, traces=pending.traces, slo=self.slo,
                    tracer=pending.tracer,
                )
            if flighted:
                self._resilience.on_crash(handle, flighted, exc)
        # A quarantined worker that delivered its final snapshot retired
        # gracefully: its batches were answered first (pipe FIFO) and
        # its counts move to the retired list, so the replacement below
        # costs the pool nothing but the fork.
        quarantined = handle.quarantined and handle.final_snapshot is not None
        replaced = False
        if (crashed or quarantined) and self.restart:
            # The whole swap happens under the pool lock: close() either
            # sees the replacement in its roster snapshot or, by setting
            # ``_closed`` first, suppresses the restart entirely. The
            # receiver starts before the handle becomes visible, so any
            # visible handle is always joinable.
            with self._cond:
                if not self._closed:
                    replacement = self._spawn(handle.worker_id)
                    self._start_receiver(replacement)
                    self._handles[self._handles.index(handle)] = replacement
                    self._count("serve.pool.worker_restarts")
                    if handle.final_snapshot is not None:
                        self._retired_snapshots.append(handle.final_snapshot)
                    replaced = True
                    # Both the dispatcher and any dispatch-wait sleeper
                    # may be blocked on a live worker appearing.
                    self._cond.notify_all()
        if replaced:
            # The old handle left the roster, so close() will never join
            # it — reap the process, its pipe and its rings here, on its
            # receiver (forensics above already copied any slot state).
            handle.process.join(timeout=10)
            try:
                handle.conn.close()
            except OSError:
                pass
            self._release_rings(handle)

    def _ring_forensics(self, handle: _WorkerHandle, orphans):
        """Header state of every orphaned slot pair, copied before reuse.

        What turns "worker 3 died" into "worker 3 died mid-write of
        resp[2], seq 41": the request frame's state shows what the
        worker was handed, the response frame's generation/commit pair
        shows whether the crash tore the answer.
        """
        if handle.request_ring is None:
            return ()
        states = []
        for _, pending in orphans:
            if pending.slot is None:
                continue
            try:
                states.append(handle.request_ring.slot_state(pending.slot))
                states.append(handle.response_ring.slot_state(pending.slot))
            except ServeError:
                break  # rings already released — nothing left to read
        return tuple(states)

    def _release_rings(self, handle: _WorkerHandle) -> None:
        """Unlink one retired worker's ring pair (parent owns them)."""
        for ring in (handle.request_ring, handle.response_ring):
            if ring is not None:
                ring.unlink()
        handle.request_ring = None
        handle.response_ring = None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _pick_handle(self, exclude=frozenset()) -> Optional[_WorkerHandle]:
        """The dispatchable worker holding the fewest outstanding elements.

        Quarantined workers are benched; ``exclude`` bans worker slots
        (retries prefer a worker the failed attempt didn't run on).
        """
        best = None
        for handle in self._handles:
            if handle.dead or handle.quarantined:
                continue
            if handle.worker_id in exclude:
                continue
            if best is None or handle.outstanding < best.outstanding:
                best = handle
        return best

    def _least_loaded(self) -> Optional[_WorkerHandle]:
        """The live worker holding the fewest outstanding elements."""
        return self._pick_handle()

    def _await_worker(self) -> Optional[_WorkerHandle]:
        """Optionally ride out an all-workers-dead window.

        With ``dispatch_wait_s`` set, a dispatch that finds no live
        worker parks on the pool condition until a restart lands (the
        exit path's ``notify_all``) or the window closes — so a single
        crash under open-loop load costs one bounded wait instead of a
        shed storm. Counted under ``serve.pool.dispatch_waits``.
        """
        if self._dispatch_wait_s <= 0:
            return None
        self._count("serve.pool.dispatch_waits")
        deadline = time.monotonic() + self._dispatch_wait_s
        with self._cond:
            while True:
                handle = self._pick_handle()
                remaining = deadline - time.monotonic()
                if handle is not None or remaining <= 0:
                    return handle
                self._cond.wait(remaining)

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while True:
                    now = time.perf_counter_ns()
                    ready = self._batcher.take_ready(
                        now, flush_all=self._closed
                    )
                    if ready or self._closed:
                        break
                    deadline = self._batcher.next_deadline_ns()
                    timeout = (
                        None if deadline is None
                        else max(deadline - now, 0) / 1e9
                    )
                    self._cond.wait(timeout)
                done = self._closed and not self._batcher
            tracer = _tracing.resolve(self.tracer)
            if self._closed and not self._flush_on_close:
                for batch in ready:
                    self._drop_batch(batch, tracer)
            else:
                for batch in ready:
                    self._ship(batch, tracer)
            if done:
                return

    def _transmit(self, handle: _WorkerHandle, seq: int, pending: _Pending,
                  source, traced: bool, guard: bool) -> bool:
        """Ship one fused payload to ``handle`` over the active lane.

        ``source`` is either the :class:`Batch` itself (gathered
        straight into a ring frame — no intermediate concatenation) or a
        pre-fused ndarray (a resilience flight's persistent payload,
        copied in). A free ring slot that fits takes the zero-copy lane:
        payload into the request frame, commit, then the tiny doorbell
        over the pipe. Oversize payloads and full rings fall back to the
        pickled pipe message — counted, never refused. ``guard`` skips
        the send when the worker is dead or quarantined (the flight
        path's contract); returns whether the payload went out.
        """
        if isinstance(source, Batch):
            elements = source.elements
            shape = source.fused_shape
        else:
            elements = source.size
            shape = source.shape
        pending.shape = shape
        ring = handle.request_ring
        slot = None
        if ring is not None:
            if elements > ring.slot_elements:
                self._count("serve.pool.ring_oversize")
            else:
                with handle.lock:
                    if handle.free_slots:
                        slot = handle.free_slots.pop()
                if slot is None:
                    self._count("serve.pool.ring_full")
        pending.slot = slot
        start = time.perf_counter_ns()
        sent = False
        try:
            if slot is not None:
                frame = ring.open_frame(slot, seq, elements)
                if isinstance(source, Batch):
                    source.gather_into(frame)
                else:
                    np.copyto(frame, source.reshape(-1))
                ring.commit_frame(slot)
                with handle.send_lock:
                    if not (guard and (handle.dead or handle.quarantined)):
                        handle.conn.send(
                            ("rbatch", seq, pending.batch.mode.value, slot,
                             shape, traced)
                        )
                        sent = True
            else:
                payload = (
                    source.fused_raw() if isinstance(source, Batch)
                    else source
                )
                with handle.send_lock:
                    if not (guard and (handle.dead or handle.quarantined)):
                        handle.conn.send(
                            ("batch", seq, pending.batch.mode.value, payload,
                             traced)
                        )
                        sent = True
        except (OSError, BrokenPipeError, ServeError):
            # OSError/BrokenPipeError: the worker died under the send.
            # ServeError: its rings were already released — same outcome.
            sent = False
        if sent:
            self._count("serve.pool.dispatched")
            self._count(
                "serve.pool.ring_dispatched" if slot is not None
                else "serve.pool.pipe_dispatched"
            )
            self._count("serve.pool.ipc_bytes", elements * 8)
            tel = _telemetry.resolve(self.collector)
            if tel is not None:
                tel.observe_span(
                    "serve.pool.ship", time.perf_counter_ns() - start
                )
        elif slot is not None:
            self._free_slot(handle, slot)
            pending.slot = None
        return sent

    def _ship(self, batch: Batch, tracer) -> None:
        """Hand one fused batch to the least-loaded live worker."""
        if self._resilience is not None:
            self._resilience.launch(batch, tracer)
            return
        handle = self._least_loaded()
        if handle is None:
            handle = self._await_worker()
        dispatch_ns = time.perf_counter_ns()
        tel, traces, enqueue_ns = batch.begin(
            self.collector, tracer, self.slo, dispatch_ns=dispatch_ns
        )
        if handle is None:
            self._count("serve.pool.no_live_workers")
            batch.fail(
                WorkerCrashError("no live workers to dispatch to"),
                traces=traces, slo=self.slo, tracer=tracer,
            )
            return
        seq = next(self._seq)
        pending = _Pending(batch, tel, traces, enqueue_ns, dispatch_ns, tracer)
        with handle.lock:
            handle.in_flight[seq] = pending
            handle.outstanding += batch.elements
        if not self._transmit(handle, seq, pending, batch, bool(traces),
                              guard=False):
            # Died between pick and send; the receiver's exit path may
            # have already failed it, so pop defensively first.
            if self._pop_pending(handle, seq) is not None:
                batch.fail(
                    WorkerCrashError(
                        f"worker {handle.worker_id} died before dispatch"
                    ),
                    traces=traces, slo=self.slo, tracer=tracer,
                )

    def _send_flight(self, flight, exclude=frozenset(),
                     wait: bool = False) -> bool:
        """Dispatch one attempt of a resilience flight.

        Prefers a live worker outside ``exclude`` (a retry should land
        somewhere the failed attempt didn't), falls back to any live
        worker — on a one-worker pool retrying in place still beats
        failing — and returns ``False`` only when nothing is live (after
        the optional :meth:`_await_worker` window when ``wait`` is set).
        """
        failed: set = set()
        while True:
            handle = self._pick_handle(set(exclude) | failed)
            if handle is None:
                handle = self._pick_handle(failed)
            if handle is None and wait:
                handle = self._await_worker()
                if handle is not None and handle.worker_id in failed:
                    handle = None
            if handle is None:
                return False
            seq = next(self._seq)
            dispatch_ns = time.perf_counter_ns()
            with flight.lock:
                pending = _Pending(
                    flight.batch, flight.tel, flight.traces,
                    flight.enqueue_ns, dispatch_ns, flight.tracer,
                    flight=flight, attempt=flight.attempts,
                )
            with handle.lock:
                handle.in_flight[seq] = pending
                handle.outstanding += flight.batch.elements
            # Quarantine flips under the send lock, so a set flag there
            # means the close message is already ahead of this attempt
            # in the pipe — _transmit skips the send (guard=True) and
            # another worker is picked instead.
            sent = self._transmit(
                handle, seq, pending, flight.payload, bool(flight.traces),
                guard=True,
            )
            if sent:
                with flight.lock:
                    flight.attempts += 1
                    flight.last_dispatch_ns = dispatch_ns
                    if not flight.first_dispatch_ns:
                        flight.first_dispatch_ns = dispatch_ns
                    flight.worker_ids.append(handle.worker_id)
                return True
            self._pop_pending(handle, seq)
            failed.add(handle.worker_id)

    def _quarantine(self, handle: _WorkerHandle) -> bool:
        """Bench one worker and start its graceful drain.

        The close message follows every batch already written to the
        pipe, so the worker answers its in-flight work, ships its final
        telemetry snapshot, and exits; the receiver's exit path then
        forks the replacement and moves the snapshot to the retired
        list. Returns whether this call initiated the quarantine.
        """
        with handle.send_lock:
            if handle.dead or handle.quarantined or self._closed:
                return False
            handle.quarantined = True
            try:
                handle.conn.send(("close",))
            except (OSError, BrokenPipeError):
                pass  # dying anyway — its receiver handles the fallout
        return True

    def _drop_batch(self, batch: Batch, tracer) -> None:
        """``close(flush=False)``: fail a never-dispatched batch."""
        now = time.perf_counter_ns()
        self._count("serve.requests", len(batch.requests))
        exc = ServerClosedError("pool closed before dispatch")
        for request in batch.requests:
            request.future.set_exception(exc)
            if request.trace is not None:
                request.trace.dispatch_ns = now
                request.trace.status = "shed"
                if tracer is not None:
                    tracer.retire(request.trace)
        if self.slo is not None:
            self.slo.record_many([0] * len(batch.requests), ok=False)

    def _count(self, name: str, n: int = 1) -> None:
        tel = _telemetry.resolve(self.collector)
        if tel is not None:
            tel.count(name, n)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        shared = (
            f"{len(self._manifest)} shared tables"
            if self._manifest is not None else "no shared image"
        )
        return (
            f"<WorkerPool {state}, {self.alive_workers()}/{self.workers} "
            f"workers live, {self.transport} transport, {shared}, "
            f"{self._batcher.pending_requests} pending>"
        )
