"""The asyncio front door: admission-controlled async submission.

:class:`AsyncFrontend` puts an event loop in front of either serving
backend — the in-process :class:`~repro.serve.server.InferenceServer`
or the multi-process :class:`~repro.serve.pool.WorkerPool` — without
adding a thread of its own. ``await frontend.submit(x)`` quantises and
enqueues on the caller's loop (both are sub-microsecond per request),
hands the backend's :class:`concurrent.futures.Future` to
:func:`asyncio.wrap_future`, and suspends the coroutine until a
dispatcher or worker resolves it. Ten thousand coroutines awaiting
responses cost ten thousand suspended frames, not ten thousand threads.

Admission control happens **here**, before the backend's queue is ever
touched: the frontend tracks its own in-flight count and sheds with
:class:`~repro.errors.BackpressureError` the moment ``max_inflight``
awaited requests are outstanding. That bounds end-to-end latency at the
earliest possible point — a request that would only sit behind an
already-deep queue is refused while it is still cheap to refuse, the
shed is counted (``serve.frontend.shed``) and burns SLO error budget
exactly like a backend shed. The backend's own element-bounded pool is
the second line of defence; its sheds propagate unchanged.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Union

from repro.errors import BackpressureError, WorkerCrashError
from repro.nacu.config import FunctionMode
from repro.telemetry import collector as _telemetry


class AsyncFrontend:
    """Async facade with in-flight admission control over a backend.

    Wraps any object with the serving contract (``submit(x, mode, axis)
    -> Future``, ``close(flush)``, optional ``collector``/``slo``
    attributes). Not thread-safe by design: one frontend belongs to one
    event loop, where single-threaded execution makes the admission
    check race-free.
    """

    def __init__(
        self, backend, *, max_inflight: int = 4096, retry_crashes: int = 0
    ):
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        if retry_crashes < 0:
            raise ValueError("retry_crashes must be non-negative")
        self.backend = backend
        self.max_inflight = max_inflight
        #: How many times :meth:`submit` resubmits a request whose batch
        #: died with a worker (:class:`WorkerCrashError`) before letting
        #: the error propagate. Crash-retry is safe at this layer — the
        #: request never produced a response, so resubmission cannot
        #: duplicate work the caller observed. Each resubmission counts
        #: under ``serve.frontend.retries``.
        self.retry_crashes = retry_crashes
        self._inflight = 0

    @property
    def inflight(self) -> int:
        """Requests admitted here and not yet resolved."""
        return self._inflight

    async def submit(
        self,
        x,
        mode: Union[FunctionMode, str] = FunctionMode.SIGMOID,
        axis: int = -1,
    ):
        """Admit, enqueue, and await one evaluation.

        Returns the resolved result (floats in, floats out; fixed-point
        in, fixed-point out — the backend's contract). Raises
        :class:`BackpressureError` when ``max_inflight`` requests are
        already awaited (counted under ``serve.frontend.shed``) and
        propagates backend sheds and evaluation errors unchanged —
        except :class:`WorkerCrashError`, which is resubmitted up to
        ``retry_crashes`` times before propagating.
        """
        if self._inflight >= self.max_inflight:
            self._shed()
            raise BackpressureError(
                f"frontend at max_inflight={self.max_inflight}; retry later"
            )
        self._inflight += 1
        try:
            attempt = 0
            while True:
                future = self.backend.submit(x, mode=mode, axis=axis)
                try:
                    return await asyncio.wrap_future(future)
                except WorkerCrashError:
                    if attempt >= self.retry_crashes:
                        raise
                    attempt += 1
                    self._count_retry()
        finally:
            self._inflight -= 1

    async def close(self, flush: bool = True) -> None:
        """Drain the backend off-loop (its close joins threads/processes)."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, lambda: self.backend.close(flush))

    async def __aenter__(self) -> "AsyncFrontend":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    def _count_retry(self) -> None:
        tel = _telemetry.resolve(getattr(self.backend, "collector", None))
        if tel is not None:
            tel.count("serve.frontend.retries")

    def _shed(self) -> None:
        tel = _telemetry.resolve(getattr(self.backend, "collector", None))
        if tel is not None:
            tel.count("serve.frontend.shed")
        slo = getattr(self.backend, "slo", None)
        if slo is not None:
            slo.record_shed()

    def __repr__(self) -> str:
        return (
            f"<AsyncFrontend {self._inflight}/{self.max_inflight} in flight "
            f"over {self.backend!r}>"
        )
