"""The zero-copy shared table store: one table image, many workers.

A compiled :class:`~repro.compile.table.ResponseTable` is an immutable
int64 array — the perfect shape for sharing. The store publishes each
table's bytes **once** into a ``multiprocessing.shared_memory`` segment;
every worker (thread or process) then *attaches*: its table's ``outputs``
array is a read-only view straight over the shared buffer, so N workers
hold one physical copy instead of N private ones, and attachment costs a
handle open plus a header read — no compile, no ``.npz`` parse, no copy.

Two publication media:

* **shared memory** (:class:`SharedTableStore`) — the serving
  configuration: a parent publishes, workers attach by segment name via
  the picklable :class:`StoreManifest`;
* **memory-mapped ``.npz``** (:func:`mmap_table`) — the cold-start
  configuration: the files :class:`~repro.compile.cache.TableCache`
  persists are uncompressed zip archives, so the ``outputs.npy`` member
  can be mapped in place with ``np.memmap`` — processes then share the
  table through the page cache without any shm hand-off (an
  ``np.load(..., mmap_mode="r")`` equivalent that survives the zip
  framing).

Either way the resulting table is *byte-identical* to a privately
compiled one — attachment changes where the bytes live, never what they
are — and plugs into :class:`~repro.compile.cache.TableCache` through
its ``source`` hook (:class:`AttachedTableSource`), so the engine's fast
path picks shared images up transparently.
"""

from __future__ import annotations

import inspect
import os
import struct
import threading
import zipfile
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.compile.cache import TableCache, default_cache
from repro.compile.table import (
    RECIPROCAL_KIND,
    TABLE_MODES,
    ReciprocalTable,
    ResponseTable,
)
from repro.errors import ServeError, TornFrameError
from repro.fixedpoint import QFormat
from repro.nacu.config import FunctionMode, NacuConfig
from repro.telemetry import collector as _telemetry


def _count(name: str, n: int = 1) -> None:
    tel = _telemetry.resolve(None)
    if tel is not None:
        tel.count(name, n)


@dataclass(frozen=True)
class TableEntry:
    """One published table: everything an attacher needs, no array data.

    ``mode`` is a :class:`FunctionMode` value for response tables or the
    ``"reciprocal"`` kind for the approximate divider's mantissa table;
    ``den_fb`` carries the reciprocal table's denominator fraction width
    (``-1`` for response tables, which have none).
    """

    shm_name: str
    fingerprint: str
    mode: str
    fmt: str
    raw_offset: int
    shape: Tuple[int, ...]
    dtype: str
    nbytes: int
    den_fb: int = -1


@dataclass(frozen=True)
class StoreManifest:
    """The picklable hand-off from publisher to attachers.

    ``publisher_pid`` lets an attacher tell whether it shares the
    publisher's process — segment ownership (and therefore resource-
    tracker bookkeeping) differs between the two cases.
    """

    entries: Tuple[TableEntry, ...] = field(default_factory=tuple)
    publisher_pid: int = 0

    def __len__(self) -> int:
        return len(self.entries)


_ATTACH_LOCK = threading.Lock()
_SHM_HAS_TRACK = "track" in inspect.signature(
    shared_memory.SharedMemory.__init__
).parameters


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without claiming ownership of it.

    On POSIX Pythons before 3.13, *attaching* registers the segment with
    the resource tracker exactly like creating it does — so a spawn-mode
    worker exiting would unlink the publisher's segment out from under
    every other worker, and unregistering after the fact instead corrupts
    the tracker the publisher shares with fork-mode workers. Ownership
    must stay with the publisher alone, so the attach suppresses the
    registration at the source (3.13+ says ``track=False`` for this; the
    shim below says it for older interpreters).
    """
    if _SHM_HAS_TRACK:
        return shared_memory.SharedMemory(name=name, track=False)
    from multiprocessing import resource_tracker

    with _ATTACH_LOCK:
        original = resource_tracker.register

        def _skip_shared_memory(res_name, rtype):
            if rtype != "shared_memory":
                original(res_name, rtype)

        resource_tracker.register = _skip_shared_memory
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedTableStore:
    """Publisher side: owns the shared-memory segments for a config's tables.

    ``publish()`` compiles (or pulls from ``cache``) each requested mode's
    table and copies it into a fresh segment — the one and only copy.
    The returned :class:`StoreManifest` is what crosses process
    boundaries. The publisher must outlive its attachers and call
    :meth:`unlink` (or use the context manager) when serving ends;
    attachers only ever :meth:`AttachedTableSource.close`.
    """

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self._entries: List[TableEntry] = []
        self._unlinked = False

    def publish(
        self,
        config: NacuConfig,
        modes: Iterable[FunctionMode] = TABLE_MODES,
        cache: Optional[TableCache] = None,
        include_reciprocal: Optional[bool] = None,
    ) -> StoreManifest:
        """Publish every requested mode's table; returns the manifest.

        Tables come from ``cache`` (the process default when ``None``) so
        a publisher that already served locally reuses its compiles. A
        format too wide for the cache's per-table ceiling cannot be
        published — the caller should let such workers fall back to the
        datapath instead.

        ``include_reciprocal`` additionally publishes the approximate
        divider's compiled reciprocal table (the softmax fast divide).
        The default ``None`` publishes it exactly when the config uses
        the approximate divider and the table fits the cache ceiling;
        ``True`` makes its absence an error, ``False`` skips it.
        """
        cache = cache if cache is not None else default_cache()
        for mode in modes:
            table = cache.get(config, mode)
            if table is None:
                raise ServeError(
                    f"cannot publish {mode.value!r} for {config.io_fmt}: "
                    f"the format exceeds the cache's per-table ceiling"
                )
            self._publish_one(
                table, mode=table.mode.value, den_fb=-1
            )
        auto = include_reciprocal is None
        if auto:
            include_reciprocal = config.use_approx_divider
        if include_reciprocal:
            if not config.use_approx_divider:
                raise ServeError(
                    "cannot publish a reciprocal table: the config uses the "
                    "restoring divider (its fast path needs no table)"
                )
            reciprocal = cache.get_reciprocal(config)
            if reciprocal is not None:
                self._publish_one(
                    reciprocal, mode=RECIPROCAL_KIND, den_fb=reciprocal.den_fb
                )
            elif not auto:
                raise ServeError(
                    "cannot publish the reciprocal table: the mantissa range "
                    "exceeds the cache's per-table ceiling"
                )
            # auto + too wide: skip — attached workers fall back to the
            # divider's Newton path, exactly as a local engine would.
        return self.manifest()

    def _publish_one(self, table, mode: str, den_fb: int) -> None:
        """Copy one compiled table into a fresh owned segment."""
        segment = shared_memory.SharedMemory(create=True, size=table.nbytes)
        view = np.ndarray(
            table.outputs.shape, dtype=table.outputs.dtype, buffer=segment.buf
        )
        view[:] = table.outputs
        self._segments.append(segment)
        self._entries.append(
            TableEntry(
                shm_name=segment.name,
                fingerprint=table.fingerprint,
                mode=mode,
                fmt=str(table.fmt),
                raw_offset=table.raw_offset,
                shape=tuple(table.outputs.shape),
                dtype=str(table.outputs.dtype),
                nbytes=table.nbytes,
                den_fb=den_fb,
            )
        )
        _count("serve.store.published")
        _count("serve.store.published_bytes", table.nbytes)

    def manifest(self) -> StoreManifest:
        """The manifest of everything published so far."""
        return StoreManifest(
            entries=tuple(self._entries), publisher_pid=os.getpid()
        )

    @property
    def nbytes(self) -> int:
        """Total bytes of the published (single-copy) table images."""
        return sum(entry.nbytes for entry in self._entries)

    def unlink(self) -> None:
        """Destroy the segments (after every attacher has closed)."""
        if self._unlinked:
            return
        self._unlinked = True
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except OSError:
                pass  # already reaped — nothing left to free

    def __enter__(self) -> "SharedTableStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.unlink()

    def __repr__(self) -> str:
        return (
            f"<SharedTableStore {len(self._entries)} tables, "
            f"{self.nbytes >> 10} KiB shared>"
        )


class AttachedTableSource:
    """Attacher side: zero-copy read-only tables over a publisher's store.

    Satisfies the ``source`` protocol of
    :class:`~repro.compile.cache.TableCache` — ``lookup(fingerprint,
    mode)`` — so wiring a worker is::

        source = AttachedTableSource(manifest)
        cache = TableCache(source=source)
        engine = BatchEngine.for_bits(16, fast=True, table_cache=cache)

    Every table the store covers is now served from the shared image;
    anything else falls through to the cache's normal build path.
    """

    def __init__(self, manifest: StoreManifest):
        self._segments: List[shared_memory.SharedMemory] = []
        self._tables: Dict[Tuple[str, str], object] = {}
        for entry in manifest.entries:
            segment = _attach_untracked(entry.shm_name)
            outputs = np.ndarray(
                entry.shape, dtype=np.dtype(entry.dtype), buffer=segment.buf
            )
            outputs.flags.writeable = False
            self._segments.append(segment)
            if entry.mode == RECIPROCAL_KIND:
                table = ReciprocalTable(
                    fingerprint=entry.fingerprint,
                    fmt=QFormat.parse(entry.fmt),
                    den_fb=entry.den_fb,
                    raw_offset=entry.raw_offset,
                    outputs=outputs,
                )
            else:
                table = ResponseTable(
                    mode=FunctionMode(entry.mode),
                    fingerprint=entry.fingerprint,
                    fmt=QFormat.parse(entry.fmt),
                    raw_offset=entry.raw_offset,
                    outputs=outputs,
                )
            self._tables[(entry.fingerprint, entry.mode)] = table
            _count("serve.store.attached")

    def lookup(self, fingerprint: str, mode: str):
        """The attached table for ``(fingerprint, mode)``, or ``None``.

        ``mode`` is a function-mode value for response tables or
        ``"reciprocal"`` for the divider's mantissa table — the same key
        space :class:`~repro.compile.cache.TableCache` consults this
        source with.
        """
        return self._tables.get((fingerprint, mode))

    def __len__(self) -> int:
        return len(self._tables)

    def close(self) -> None:
        """Drop the attachment (the publisher's segments live on)."""
        self._tables.clear()
        for segment in self._segments:
            try:
                segment.close()
            except (OSError, BufferError):
                pass  # a live array view still pins the buffer
        self._segments.clear()

    def __enter__(self) -> "AttachedTableSource":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ----------------------------------------------------------------------
# The zero-copy batch transport: SPSC payload rings
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RingSlotState:
    """One slot's header words, copied out for crash forensics.

    Plain integers, snapshotted at read time — safe to hold in a
    :class:`~repro.errors.WorkerCrashError` long after the ring itself
    is unlinked.
    """

    ring: str
    slot: int
    generation: int
    commit: int
    seq: int
    elements: int

    @property
    def torn(self) -> bool:
        """Whether a writer died between opening and committing the frame."""
        return self.generation != self.commit

    def __str__(self) -> str:
        state = "TORN" if self.torn else "whole"
        return (
            f"{self.ring}[{self.slot}] gen={self.generation} "
            f"commit={self.commit} seq={self.seq} "
            f"elements={self.elements} {state}"
        )


@dataclass(frozen=True)
class RingManifest:
    """The picklable hand-off describing one worker's paired payload rings."""

    request_name: str
    response_name: str
    slots: int
    slot_elements: int


class SlotRing:
    """Fixed-slot SPSC payload frames over one shared-memory segment.

    The batch transport's bulk lane: the pool's parent writes a fused
    request payload straight into a free slot of the *request* ring and
    sends only a tiny doorbell over the pipe; the worker evaluates from
    a zero-copy view and writes the result into the same slot index of
    the paired *response* ring. Slot ownership is the pipe protocol's
    business (the parent's free list); this class owns only the framing.

    Each slot is a row of int64 words: a four-word header
    ``[generation, commit, seq, elements]`` followed by
    ``slot_elements`` payload words. A writer bumps ``generation``,
    stamps ``seq``/``elements``, fills the payload, and only then copies
    ``generation`` into ``commit`` — so a reader that finds
    ``generation != commit`` (or a stale seq/size) is looking at a frame
    the writer never finished, and :meth:`read_frame` refuses it with
    :class:`~repro.errors.TornFrameError` instead of serving torn bytes.

    Single-producer/single-consumer per direction by contract: the
    parent's dispatcher writes request frames, one worker reads them
    (and symmetrically for responses), so no atomics are needed — the
    doorbell message *is* the release fence (``Connection.send``/
    ``recv`` order the memory operations on one host).
    """

    #: Per-slot header words: generation, commit, seq, elements.
    HEADER_WORDS = 4
    _GEN, _COMMIT, _SEQ, _ELEMENTS = range(HEADER_WORDS)

    def __init__(self, segment: shared_memory.SharedMemory, label: str,
                 slots: int, slot_elements: int, owner: bool):
        self._segment = segment
        self.label = label
        self.slots = slots
        self.slot_elements = slot_elements
        self._owner = owner
        self._unlinked = False
        self._words: Optional[np.ndarray] = np.ndarray(
            (slots, self.HEADER_WORDS + slot_elements),
            dtype=np.int64, buffer=segment.buf,
        )

    @classmethod
    def create(cls, label: str, slots: int, slot_elements: int) -> "SlotRing":
        """Allocate an owned ring with every slot header zeroed."""
        if slots < 1 or slot_elements < 1:
            raise ServeError("a ring needs at least one slot and one element")
        nbytes = slots * (cls.HEADER_WORDS + slot_elements) * 8
        segment = shared_memory.SharedMemory(create=True, size=nbytes)
        ring = cls(segment, label, slots, slot_elements, owner=True)
        ring._words[:, :cls.HEADER_WORDS] = 0
        _count("serve.store.ring_created")
        _count("serve.store.ring_bytes", nbytes)
        return ring

    @classmethod
    def attach(cls, name: str, label: str, slots: int,
               slot_elements: int) -> "SlotRing":
        """Attach to a publisher's ring without claiming ownership."""
        segment = _attach_untracked(name)
        _count("serve.store.ring_attached")
        return cls(segment, label, slots, slot_elements, owner=False)

    @property
    def name(self) -> str:
        """The segment name an attacher needs (see :class:`RingManifest`)."""
        return self._segment.name

    @property
    def nbytes(self) -> int:
        return self.slots * (self.HEADER_WORDS + self.slot_elements) * 8

    def _row(self, slot: int) -> np.ndarray:
        words = self._words
        if words is None:
            raise ServeError(f"{self.label} ring is closed")
        return words[slot]

    def open_frame(self, slot: int, seq: int, elements: int) -> np.ndarray:
        """Begin a frame: stamp the header, return the writable payload view.

        The caller fills the view and must :meth:`commit_frame` before
        ringing the doorbell — until then the frame reads as torn.
        """
        if elements > self.slot_elements:
            raise ServeError(
                f"frame of {elements} elements exceeds the "
                f"{self.slot_elements}-element {self.label} ring slot"
            )
        row = self._row(slot)
        row[self._GEN] += 1
        row[self._SEQ] = seq
        row[self._ELEMENTS] = elements
        return row[self.HEADER_WORDS:self.HEADER_WORDS + elements]

    def commit_frame(self, slot: int) -> None:
        """Seal the open frame: the payload is complete and readable."""
        row = self._row(slot)
        row[self._COMMIT] = row[self._GEN]

    def write_frame(self, slot: int, seq: int, payload: np.ndarray) -> None:
        """Open, fill and commit in one call (the pre-fused payload case)."""
        frame = self.open_frame(slot, seq, payload.size)
        np.copyto(frame, payload.reshape(-1))
        self.commit_frame(slot)

    def read_frame(self, slot: int, seq: int, shape) -> np.ndarray:
        """A read-only payload view, after proving the frame is whole."""
        row = self._row(slot)
        gen = int(row[self._GEN])
        commit = int(row[self._COMMIT])
        frame_seq = int(row[self._SEQ])
        elements = int(row[self._ELEMENTS])
        expected = 1
        for dim in shape:
            expected *= dim
        if gen != commit or frame_seq != seq or elements != expected:
            raise TornFrameError(
                f"{self.label}[{slot}]: gen={gen} commit={commit} "
                f"seq={frame_seq} elements={elements} — wanted seq {seq} "
                f"with {expected} elements"
            )
        view = row[self.HEADER_WORDS:self.HEADER_WORDS + elements]
        view = view.reshape(tuple(shape))
        view.flags.writeable = False
        return view

    def slot_state(self, slot: int) -> RingSlotState:
        """Snapshot one slot's header (crash forensics; copies, no views)."""
        row = self._row(slot)
        return RingSlotState(
            ring=self.label, slot=slot,
            generation=int(row[self._GEN]), commit=int(row[self._COMMIT]),
            seq=int(row[self._SEQ]), elements=int(row[self._ELEMENTS]),
        )

    def close(self) -> None:
        """Drop this process's mapping (frames become unreadable here)."""
        self._words = None
        try:
            self._segment.close()
        except (OSError, BufferError):
            pass  # a live frame view still pins the buffer

    def unlink(self) -> None:
        """Owner side: destroy the segment (attachers just :meth:`close`)."""
        if self._owner and not self._unlinked:
            self._unlinked = True
            try:
                self._segment.unlink()
            except OSError:
                pass  # already reaped
        self.close()

    def __repr__(self) -> str:
        return (
            f"<SlotRing {self.label!r} {self.slots}x{self.slot_elements} "
            f"({self.nbytes >> 10} KiB)>"
        )


# ----------------------------------------------------------------------
# The memory-mapped .npz path
# ----------------------------------------------------------------------
def _npz_member_span(path: Path, member: str) -> Optional[int]:
    """Byte offset of ``member``'s data inside the zip, or ``None``.

    Only uncompressed (``ZIP_STORED``) members can be mapped in place;
    ``np.savez`` stores uncompressed, so the cache's persisted tables
    always qualify. The offset walks the local file header by hand: the
    central directory's ``header_offset`` plus the 30-byte fixed header
    plus the (local, possibly zip64-padded) name and extra fields.
    """
    with zipfile.ZipFile(path) as archive:
        try:
            info = archive.getinfo(member)
        except KeyError:
            return None
        if info.compress_type != zipfile.ZIP_STORED:
            return None
        header_offset = info.header_offset
    with open(path, "rb") as fh:
        fh.seek(header_offset)
        header = fh.read(30)
        if len(header) != 30 or header[:4] != b"PK\x03\x04":
            return None
        name_len, extra_len = struct.unpack("<HH", header[26:30])
        return header_offset + 30 + name_len + extra_len


def mmap_table(path: Path):
    """Attach to a persisted table ``.npz`` without loading its payload.

    The small metadata members load normally; the ``outputs`` array is
    an ``np.memmap`` over the archive's stored bytes — read-only, demand
    -paged, and shared between every process that maps the same file.
    If the member turns out compressed (a foreign archive), the loader
    falls back to a normal copy-load and counts
    ``serve.store.mmap_fallback``. Returns a :class:`ResponseTable`, or
    a :class:`ReciprocalTable` when the archive's mode is the
    ``"reciprocal"`` kind.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            meta = {
                name: data[name]
                for name in ("version", "fingerprint", "mode", "fmt", "raw_offset")
            }
            if str(meta["mode"]) == RECIPROCAL_KIND:
                meta["den_fb"] = data["den_fb"]
            span = _npz_member_span(path, "outputs.npy")
            if span is None:
                _count("serve.store.mmap_fallback")
                outputs = np.ascontiguousarray(data["outputs"], dtype=np.int64)
                outputs.flags.writeable = False
            else:
                with open(path, "rb") as fh:
                    fh.seek(span)
                    version = np.lib.format.read_magic(fh)
                    if version == (1, 0):
                        shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
                    else:
                        shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
                    data_offset = fh.tell()
                if fortran:
                    raise ServeError(f"{path}: unexpected Fortran-order table")
                outputs = np.memmap(
                    path, dtype=dtype, mode="r", offset=data_offset, shape=shape
                )
                _count("serve.store.mmap_attached")
    except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
        raise ServeError(f"{path}: not a readable persisted table ({exc})") from exc
    if str(meta["mode"]) == RECIPROCAL_KIND:
        return ReciprocalTable(
            fingerprint=str(meta["fingerprint"]),
            fmt=QFormat.parse(str(meta["fmt"])),
            den_fb=int(meta["den_fb"]),
            raw_offset=int(meta["raw_offset"]),
            outputs=outputs,
        )
    mode = FunctionMode(str(meta["mode"]))
    return ResponseTable(
        mode=mode,
        fingerprint=str(meta["fingerprint"]),
        fmt=QFormat.parse(str(meta["fmt"])),
        raw_offset=int(meta["raw_offset"]),
        outputs=outputs,
    )


class MmapTableSource:
    """A ``TableCache`` source over a directory of persisted ``.npz`` tables.

    Lazily maps ``table-<fingerprint>-<mode>.npz`` files (the exact
    layout :class:`~repro.compile.cache.TableCache` persists) on first
    lookup. Unlike the disk-load path this never copies the payload —
    co-resident workers pointed at the same directory share the bytes
    through the page cache.
    """

    def __init__(self, root: Path):
        self.root = Path(root)
        self._tables: Dict[Tuple[str, str], object] = {}

    def lookup(self, fingerprint: str, mode: str):
        key = (fingerprint, mode)
        table = self._tables.get(key)
        if table is not None:
            return table
        path = self.root / f"table-{fingerprint}-{mode}.npz"
        if not path.exists():
            return None
        try:
            table = mmap_table(path)
        except ServeError:
            return None  # corrupt file: let the cache recompile
        table_mode = (
            table.kind if isinstance(table, ReciprocalTable) else table.mode.value
        )
        if table.fingerprint != fingerprint or table_mode != mode:
            return None  # stale: embedded identity no longer matches
        self._tables[key] = table
        return table
