"""The serving layer: shared table images + micro-batched inference.

Three pieces, separable and composable:

* :mod:`repro.serve.store` — publish compiled response tables once into
  shared memory (or map persisted ``.npz`` files in place) and attach N
  workers to one zero-copy image;
* :mod:`repro.serve.batcher` — coalesce single-sample and small-array
  requests into the large fused batches the vectorised datapath is
  fastest at, bit-identically and with explicit backpressure;
* :mod:`repro.serve.server` — the ``submit()``/``close()`` front end
  tying both to a worker pool, with ``serve.*`` telemetry.

``python -m repro.serve`` runs a self-contained demo server.
"""

from repro.errors import BackpressureError, ServeError, ServerClosedError
from repro.serve.batcher import SERVABLE_MODES, Batch, MicroBatcher, Request
from repro.serve.server import InferenceServer
from repro.serve.store import (
    AttachedTableSource,
    MmapTableSource,
    SharedTableStore,
    StoreManifest,
    TableEntry,
    mmap_table,
)

__all__ = [
    "AttachedTableSource",
    "BackpressureError",
    "Batch",
    "InferenceServer",
    "MicroBatcher",
    "MmapTableSource",
    "Request",
    "SERVABLE_MODES",
    "ServeError",
    "ServerClosedError",
    "SharedTableStore",
    "StoreManifest",
    "TableEntry",
    "mmap_table",
]
