"""The serving layer: shared table images + micro-batched inference.

Five pieces, separable and composable:

* :mod:`repro.serve.store` — publish compiled response tables once into
  shared memory (or map persisted ``.npz`` files in place) and attach N
  workers to one zero-copy image;
* :mod:`repro.serve.batcher` — coalesce single-sample and small-array
  requests into the large fused batches the vectorised datapath is
  fastest at, bit-identically and with explicit backpressure;
* :mod:`repro.serve.server` — the in-process ``submit()``/``close()``
  front end tying both to a dispatcher thread, with ``serve.*``
  telemetry;
* :mod:`repro.serve.pool` — the scale-out tier: N forked worker
  processes attached read-only to one shared table image, batched
  hand-off through zero-copy shared-memory slot rings (pickled pipes as
  fallback and differential oracle), crash detection and restart — same
  client contract, same bytes;
* :mod:`repro.serve.frontend` — the asyncio front door: async
  ``submit()`` with admission control that sheds before queues grow,
  over either backend;
* :mod:`repro.serve.resilience` — the chaos defence: response
  verification (range/row-sum invariants, interleaved golden canaries),
  bounded retry and hedging, worker quarantine — driven by a
  :class:`~repro.serve.resilience.ResponsePolicy` handed to either
  serving tier.

``python -m repro.serve`` runs a self-contained demo server (add
``--pool N`` to demo the worker pool).
"""

from repro.errors import (
    BackpressureError,
    ResponseTimeoutError,
    ResponseVerificationError,
    ServeError,
    ServerClosedError,
    TornFrameError,
    WorkerCrashError,
)
from repro.serve.batcher import SERVABLE_MODES, Batch, MicroBatcher, Request
from repro.serve.frontend import AsyncFrontend
from repro.serve.pool import WorkerPool
from repro.serve.resilience import ResponsePolicy, ResponseVerifier
from repro.serve.server import InferenceServer
from repro.serve.store import (
    AttachedTableSource,
    MmapTableSource,
    RingManifest,
    RingSlotState,
    SharedTableStore,
    SlotRing,
    StoreManifest,
    TableEntry,
    mmap_table,
)

__all__ = [
    "AsyncFrontend",
    "AttachedTableSource",
    "BackpressureError",
    "Batch",
    "InferenceServer",
    "MicroBatcher",
    "MmapTableSource",
    "Request",
    "ResponsePolicy",
    "ResponseTimeoutError",
    "ResponseVerificationError",
    "ResponseVerifier",
    "RingManifest",
    "RingSlotState",
    "SERVABLE_MODES",
    "ServeError",
    "ServerClosedError",
    "SharedTableStore",
    "SlotRing",
    "StoreManifest",
    "TableEntry",
    "TornFrameError",
    "WorkerCrashError",
    "WorkerPool",
    "mmap_table",
]
