"""Demo server: a mixed-mode request storm through the micro-batcher.

Usage::

    PYTHONPATH=src python -m repro.serve [--bits 16] [--requests 2048]
        [--clients 4] [--workers 1] [--max-batch 4096] [--delay-us 200]
        [--report]

Spins up an :class:`~repro.serve.server.InferenceServer`, fires a storm
of single-sample and small-array sigmoid/tanh/exp/softmax requests from
concurrent client threads, checks every response against a direct
engine call, and prints throughput plus the ``serve.*`` telemetry the
run produced. Exits non-zero if any response mismatches — the demo
doubles as an end-to-end sanity check.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

import numpy as np

from repro.engine import BatchEngine
from repro.serve import InferenceServer
from repro.telemetry import Collector, use_collector
from repro.telemetry.report import render_snapshot

MODES = ("sigmoid", "tanh", "exp", "softmax")


def _make_requests(rng: np.random.Generator, count: int):
    requests = []
    for _ in range(count):
        mode = MODES[int(rng.integers(len(MODES)))]
        if mode == "softmax":
            x = rng.uniform(-4, 4, size=(int(rng.integers(2, 9)),))
        elif mode == "exp":
            x = rng.uniform(-8, 0, size=(int(rng.integers(1, 17)),))
        else:
            x = rng.uniform(-6, 6, size=(int(rng.integers(1, 17)),))
        requests.append((mode, x))
    return requests


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bits", type=int, default=16)
    parser.add_argument("--requests", type=int, default=2048)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--max-batch", type=int, default=4096)
    parser.add_argument("--delay-us", type=float, default=200.0)
    parser.add_argument("--report", action="store_true",
                        help="print the full telemetry report")
    args = parser.parse_args(argv)

    reference = BatchEngine.for_bits(args.bits, fast=True)
    requests = _make_requests(np.random.default_rng(0), args.requests)
    shards = [requests[i::args.clients] for i in range(args.clients)]
    futures = [[] for _ in shards]

    collector = Collector()
    with use_collector(collector):
        server = InferenceServer(
            n_bits=args.bits, workers=args.workers,
            max_batch_elements=args.max_batch, max_delay_us=args.delay_us,
        )
        start = time.perf_counter()
        with server:
            def client(shard, out):
                for mode, x in shard:
                    out.append((mode, x, server.submit(x, mode=mode)))

            threads = [
                threading.Thread(target=client, args=(shard, out))
                for shard, out in zip(shards, futures)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            results = [
                [(mode, x, future.result()) for mode, x, future in out]
                for out in futures
            ]
        elapsed = time.perf_counter() - start

    mismatches = 0
    for out in results:
        for mode, x, got in out:
            want = getattr(reference, mode)(x)
            if not np.array_equal(np.asarray(got), np.asarray(want)):
                mismatches += 1

    counters = collector.snapshot()["counters"]
    batches = counters.get("serve.batches", 0)
    print(
        f"served {args.requests} requests in {elapsed * 1e3:.1f} ms "
        f"({args.requests / elapsed:,.0f} req/s) across {batches} fused "
        f"batches ({args.requests / max(batches, 1):.1f} req/batch), "
        f"{mismatches} mismatches"
    )
    if args.report:
        print(render_snapshot(collector.snapshot()))
    return 0 if mismatches == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
