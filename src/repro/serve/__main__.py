"""Demo server: a mixed-mode request storm through the micro-batcher.

Usage::

    PYTHONPATH=src python -m repro.serve [--bits 16] [--requests 2048]
        [--clients 4] [--workers 1] [--pool N] [--transport ring|pipe]
        [--max-batch 4096]
        [--delay-us 200] [--report] [--trace] [--trace-sample 16]
        [--slo-ms 50] [--prom-out metrics.prom] [--trace-out traces.jsonl]

Spins up an :class:`~repro.serve.server.InferenceServer` — or, with
``--pool N``, a :class:`~repro.serve.pool.WorkerPool` of N forked
worker processes on one shared table image — fires a storm of
single-sample and small-array sigmoid/tanh/exp/softmax requests from
concurrent client threads, checks every response against a direct
engine call, and prints throughput plus the ``serve.*`` telemetry the
run produced (for a pool, merged exactly across every worker) — including per-mode p50/p99/p999 latency and, with
``--slo-ms``, the SLO budget view. ``--trace`` samples per-request
traces (``--trace-out`` dumps them as JSONL for
``tools/trace_report.py``; ``--prom-out`` writes the Prometheus text
exposition). Exits non-zero if any response mismatches — the demo
doubles as an end-to-end sanity check.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import threading
import time

import numpy as np

from repro.engine import BatchEngine
from repro.serve import InferenceServer, WorkerPool
from repro.telemetry import (
    Collector,
    SLOPolicy,
    Tracer,
    quantiles_from_entry,
    render_prometheus,
    slo_summary,
    use_collector,
    write_traces_jsonl,
)
from repro.telemetry.report import render_snapshot

MODES = ("sigmoid", "tanh", "exp", "softmax")


def _make_requests(rng: np.random.Generator, count: int):
    requests = []
    for _ in range(count):
        mode = MODES[int(rng.integers(len(MODES)))]
        if mode == "softmax":
            x = rng.uniform(-4, 4, size=(int(rng.integers(2, 9)),))
        elif mode == "exp":
            x = rng.uniform(-8, 0, size=(int(rng.integers(1, 17)),))
        else:
            x = rng.uniform(-6, 6, size=(int(rng.integers(1, 17)),))
        requests.append((mode, x))
    return requests


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bits", type=int, default=16)
    parser.add_argument("--requests", type=int, default=2048)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--pool", type=int, default=None, metavar="N",
                        help="serve through a WorkerPool of N forked "
                             "processes instead of the in-process server")
    parser.add_argument("--max-batch", type=int, default=4096)
    parser.add_argument("--transport", choices=("ring", "pipe"),
                        default="ring",
                        help="pool IPC transport: shared-memory slot "
                             "rings (default) or pickled pipes")
    parser.add_argument("--delay-us", type=float, default=200.0)
    parser.add_argument("--report", action="store_true",
                        help="print the full telemetry report")
    parser.add_argument("--trace", action="store_true",
                        help="sample per-request traces")
    parser.add_argument("--trace-sample", type=int, default=16,
                        help="trace every Nth request (default 16)")
    parser.add_argument("--trace-capacity", type=int, default=1024,
                        help="trace ring-buffer size (default 1024)")
    parser.add_argument("--slo-ms", type=float, default=None,
                        help="latency SLO target in ms (enables accounting)")
    parser.add_argument("--slo-objective", type=float, default=0.999,
                        help="good-request objective fraction (default 0.999)")
    parser.add_argument("--prom-out", type=pathlib.Path, default=None,
                        help="write the Prometheus text exposition here")
    parser.add_argument("--trace-out", type=pathlib.Path, default=None,
                        help="write sampled traces as JSONL here")
    args = parser.parse_args(argv)
    if args.trace_out is not None and not args.trace:
        parser.error("--trace-out needs --trace")

    reference = BatchEngine.for_bits(args.bits, fast=True)
    requests = _make_requests(np.random.default_rng(0), args.requests)
    shards = [requests[i::args.clients] for i in range(args.clients)]
    futures = [[] for _ in shards]

    collector = Collector()
    tracer = (
        Tracer(sample_every=args.trace_sample, capacity=args.trace_capacity)
        if args.trace else None
    )
    policy = (
        SLOPolicy("serve", latency_ms=args.slo_ms,
                  objective=args.slo_objective)
        if args.slo_ms is not None else None
    )
    with use_collector(collector):
        if args.pool is not None:
            server = WorkerPool(
                n_bits=args.bits, workers=args.pool,
                max_batch_elements=args.max_batch,
                max_delay_us=args.delay_us, tracer=tracer, slo=policy,
                transport=args.transport,
            )
        else:
            server = InferenceServer(
                n_bits=args.bits, workers=args.workers,
                max_batch_elements=args.max_batch,
                max_delay_us=args.delay_us, tracer=tracer, slo=policy,
            )
        start = time.perf_counter()
        with server:
            def client(shard, out):
                for mode, x in shard:
                    out.append((mode, x, server.submit(x, mode=mode)))

            threads = [
                threading.Thread(target=client, args=(shard, out))
                for shard, out in zip(shards, futures)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            results = [
                [(mode, x, future.result()) for mode, x, future in out]
                for out in futures
            ]
        elapsed = time.perf_counter() - start
        # For a pool this folds the parent's request accounting with
        # every worker's drained engine counters — exactly, as if one
        # collector had seen all the traffic.
        snapshot = (
            server.telemetry_snapshot() if args.pool is not None
            else collector.snapshot()
        )

    mismatches = 0
    for out in results:
        for mode, x, got in out:
            want = getattr(reference, mode)(x)
            if not np.array_equal(np.asarray(got), np.asarray(want)):
                mismatches += 1

    counters = snapshot["counters"]
    batches = counters.get("serve.batches", 0)
    print(
        f"served {args.requests} requests in {elapsed * 1e3:.1f} ms "
        f"({args.requests / elapsed:,.0f} req/s) across {batches} fused "
        f"batches ({args.requests / max(batches, 1):.1f} req/batch), "
        f"{mismatches} mismatches"
    )
    for name in sorted(snapshot.get("quantiles", {})):
        entry = snapshot["quantiles"][name]
        ps = quantiles_from_entry(entry, (0.5, 0.99, 0.999))
        print(
            f"  {name}: n={entry['count']} p50={ps['p50'] / 1e3:.1f}us "
            f"p99={ps['p99'] / 1e3:.1f}us p999={ps['p999'] / 1e3:.1f}us"
        )
    if policy is not None:
        slo = slo_summary(snapshot, policy)
        print(
            f"  slo[{policy.name}] target={policy.latency_ms:g}ms "
            f"objective={policy.objective:g}: {slo['good']} good / "
            f"{slo['bad']} bad / {slo['shed']} shed, compliance "
            f"{slo['compliance']:.4f}, budget burn {slo['budget_burn']:.2f}"
            f"{' — VIOLATED' if slo['violated'] else ''}"
        )
    if tracer is not None:
        print(f"  traced {len(tracer.traces())} requests ({tracer!r})")
    if args.prom_out is not None:
        policies = [policy] if policy is not None else []
        args.prom_out.write_text(render_prometheus(snapshot, policies))
        print(f"  wrote exposition to {args.prom_out}")
    if args.trace_out is not None:
        written = write_traces_jsonl(tracer.traces(), args.trace_out)
        print(f"  wrote {written} traces to {args.trace_out}")
    if args.report:
        print(render_snapshot(snapshot))
    return 0 if mismatches == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
