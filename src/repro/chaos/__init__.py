"""The chaos soak harness: injected upsets vs the serving defences.

A :class:`~repro.chaos.soak.ChaosScenario` names one cell of the
resilience experiment — a fault rate at one datapath site, one
mitigation posture (``none`` / ``detect`` / ``retry``), optional
canaries, quarantine and a mid-run worker kill — and
:func:`~repro.chaos.soak.run_soak` drives :mod:`repro.loadgen` traffic
through a chaos-armed :class:`~repro.serve.pool.WorkerPool` while a
clean reference engine checks every completed response byte for byte.
The resulting :class:`~repro.chaos.soak.SoakReport` accounts for every
offered request in exactly one bucket (correct / corrected / wrong /
shed / loud-failed) and carries the resilience SLO numbers: detection
latency, retry and quarantine counts, and MTTR after an injected
worker kill.

The headline property the harness exists to demonstrate: at an upset
rate where the unmitigated datapath silently corrupts responses
(``wrong > 0`` with ``mitigation="none"``), the mitigated pool serves
**zero silent wrong answers** — every response is bit-correct,
corrected (and counted), or loudly shed.

``python -m repro.chaos`` runs the sweep from the command line;
``--profile quick`` is the CI-sized soak.
"""

from repro.chaos.soak import (
    ChaosScenario,
    SoakReport,
    default_sweep,
    run_soak,
    run_sweep,
)

__all__ = [
    "ChaosScenario",
    "SoakReport",
    "default_sweep",
    "run_soak",
    "run_sweep",
]
