"""``python -m repro.chaos`` — run the chaos soak sweep from the CLI.

Prints one summary line per scenario plus the headline verdict, and
exits non-zero when the resilience contract is violated: any
guard-visible mitigated cell serving a silent wrong answer, any cell
whose request accounting does not fold, or an unmitigated baseline
that failed to corrupt anything (the experiment would be vacuous).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace

from repro.chaos.soak import default_sweep, run_sweep


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="chaos soak: armed fault plans vs the serving defences",
    )
    parser.add_argument(
        "--profile", choices=("quick", "soak"), default="quick",
        help="quick = CI-sized four-cell story; soak = the full grid",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the report rows as JSON",
    )
    parser.add_argument(
        "--transport", choices=("ring", "pipe"), default="ring",
        help="pool IPC transport every scenario runs over "
             "(default: shared-memory slot rings)",
    )
    args = parser.parse_args(argv)

    scenarios = [
        replace(s, transport=args.transport)
        for s in default_sweep(args.profile)
    ]
    print(f"chaos sweep ({args.profile}): {len(scenarios)} scenario(s)")
    reports = run_sweep(scenarios)

    failures = []
    for report in reports:
        print("  " + report.summary())
        s = report.scenario
        if not report.accounted:
            failures.append(f"{s.name}: request accounting does not fold")
        if s.mitigation != "none" and s.guard_visible and report.wrong:
            failures.append(
                f"{s.name}: {report.wrong} silent wrong answer(s) under "
                f"mitigation at a guard-visible site"
            )
        if s.name == "unmitigated" and report.wrong == 0:
            failures.append(
                "unmitigated: no corruption observed — the baseline is "
                "vacuous at this rate"
            )
        if s.kill_after_s > 0 and not report.killed:
            failures.append(f"{s.name}: the worker kill never landed")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump([r.to_row() for r in reports], handle, indent=2)
        print(f"rows written to {args.json}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("resilience contract holds: zero silent wrong answers under "
          "mitigation at guard-visible sites")
    return 0


if __name__ == "__main__":
    sys.exit(main())
