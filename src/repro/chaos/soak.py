"""Chaos scenarios: armed fault plans under load, accounted exactly.

One :class:`ChaosScenario` is one cell of the resilience experiment:
a transient-upset rate at one datapath site (MSB-pinned by default, so
a range guard *provably* sees every hit at the output site), a
mitigation posture, and optionally a mid-run worker kill. The runner
arms the plan only inside the pool's forked workers (the parent and
the shared table image stay pristine), drives seeded
:mod:`repro.loadgen` traffic, and verifies every completed response
against a clean reference engine — the load harness's bit-identity
oracle is what makes "silent wrong answer" a measured number instead
of a hope.

Accounting is total: ``correct + corrected + wrong + shed +
failed_loud == offered`` holds for every report by construction
(:class:`~repro.loadgen.generator.LoadReport` splits outcomes into
completed / shed / errored; completed further splits against the
oracle and the pool's ``serve.resilience.corrected`` counter, which
folds exactly through :func:`~repro.telemetry.merge_snapshots`).

Detection coverage is site-dependent physics, not harness policy: an
MSB upset at the *final* ``io.out`` crossing leaves the function range
and cannot hide from the range guard — but the exponential and softmax
paths are built from the simpler calls, so ``io.out`` also fires on
their interior hand-offs (sigma feeding e^x, e^x feeding the divider),
where a corrupted intermediate is renormalised back into range before
anyone checks it. Guard-visible cells therefore pin the upset to the
I/O MSB *and* restrict traffic to the single-crossing modes (sigmoid,
tanh); those are the cells smoke tests assert ``wrong == 0`` on.
Everything else — other sites, the full four-mode mix — reports its
measured escape rate instead of claiming a guarantee.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.engine import BatchEngine
from repro.errors import ConfigError
from repro.faults import plan as _plan
from repro.faults.models import FaultModel, FaultSpec
from repro.faults.plan import FaultPlan, ledger_from_snapshot, mitigation_summary
from repro.loadgen import LoadGenerator, RequestMix, make_offsets, make_requests
from repro.nacu.config import NacuConfig
from repro.serve.pool import WorkerPool
from repro.serve.resilience import ResponsePolicy
from repro.telemetry.collector import Collector

#: Mitigation postures, in escalating order of machinery engaged.
MITIGATIONS = ("none", "detect", "retry")


@dataclass(frozen=True)
class ChaosScenario:
    """One cell of the chaos experiment, fully seeded and replayable."""

    name: str
    n_bits: int = 12
    workers: int = 2
    #: Pool transport under test: shared-memory slot rings or pickled
    #: pipes (the fallback/oracle lane). Chaos claims must hold on both.
    transport: str = "ring"
    #: Offered traffic: ``requests`` arrivals at ``rate_rps`` drawn from
    #: the ``arrival`` process, all seeded by ``seed``.
    requests: int = 200
    rate_rps: float = 3000.0
    arrival: str = "poisson"
    seed: int = 0
    #: Per-word transient upset probability per crossing; 0 disarms.
    fault_rate: float = 0.0
    site: str = _plan.IO_OUT
    #: Pinned upset bit (LSB = 0); ``None`` pins the I/O word's MSB —
    #: the guard-visible signature the zero-silent-wrong claim rests on.
    bit: Optional[int] = None
    #: ``none`` ships responses unchecked; ``detect`` verifies and fails
    #: loudly; ``retry`` verifies and re-dispatches before failing.
    mitigation: str = "retry"
    max_retries: int = 3
    canary_every: int = 0
    quarantine_after: int = 0
    #: The request mix, as the servable mode names to blend uniformly.
    modes: Sequence[str] = ("sigmoid", "tanh", "exp", "softmax")
    #: Kill one worker (SIGKILL) this long into the run; 0 disables.
    kill_after_s: float = 0.0
    #: Dispatch rides through restart windows instead of failing fast.
    dispatch_wait_s: float = 0.25
    fast: bool = True
    #: Request sizes: the expected per-request corruption probability is
    #: roughly ``fault_rate × elements``, so chaos mixes stay small.
    max_elements: int = 4
    max_row: int = 6
    timeout_s: float = 120.0

    def __post_init__(self) -> None:
        if self.mitigation not in MITIGATIONS:
            raise ConfigError(
                f"unknown mitigation {self.mitigation!r}; "
                f"options: {MITIGATIONS}"
            )
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ConfigError(
                f"fault rate {self.fault_rate} outside [0, 1]"
            )
        if self.requests < 1:
            raise ConfigError("a scenario offers at least one request")
        if self.kill_after_s < 0:
            raise ConfigError("kill_after_s must be non-negative")
        if self.transport not in ("ring", "pipe"):
            raise ConfigError(
                f"unknown transport {self.transport!r}; "
                "options: ring, pipe"
            )
        object.__setattr__(self, "modes", tuple(self.modes))
        if not self.modes:
            raise ConfigError("a scenario serves at least one mode")

    # ------------------------------------------------------------------
    def fault_plan(self, config: NacuConfig) -> Optional[FaultPlan]:
        """The scenario's plan (sharded per worker by the pool itself)."""
        if self.fault_rate == 0.0:
            return None
        bit = (
            self.bit if self.bit is not None
            else config.io_fmt.n_bits - 1
        )
        return FaultPlan(
            seed=self.seed,
            specs=(
                FaultSpec(
                    site=self.site, model=FaultModel.TRANSIENT,
                    rate=self.fault_rate, bit=bit,
                ),
            ),
        )

    def policy(self) -> Optional[ResponsePolicy]:
        """The pool-side defence this cell fights with (or ``None``)."""
        if self.mitigation == "none":
            return None
        return ResponsePolicy(
            verify=True,
            canary_every=self.canary_every,
            max_retries=self.max_retries if self.mitigation == "retry" else 0,
            quarantine_after=self.quarantine_after,
        )

    @property
    def guard_visible(self) -> bool:
        """Whether the injected signature provably trips the verifier.

        True for MSB-pinned upsets on the output bus under traffic that
        crosses it exactly once per response: flipping the I/O word's
        top bit takes a sigmoid/tanh value out of the function's range,
        and the range guard checks exactly that. The exp and softmax
        paths cross ``io.out`` on interior hand-offs too (their escapes
        are renormalised back into range), so cells serving them are
        coverage measurements, not guarantees.
        """
        return (
            self.site == _plan.IO_OUT
            and (self.bit is None or self.bit == self.n_bits - 1)
            and set(self.modes) <= {"sigmoid", "tanh"}
        )


@dataclass
class SoakReport:
    """What one scenario offered, where every request ended up."""

    scenario: ChaosScenario
    #: The exhaustive request accounting; the five buckets sum to
    #: ``offered`` by construction (see :attr:`accounted`).
    offered: int
    correct: int
    corrected: int
    wrong: int
    shed: int
    failed_loud: int
    #: Resilience SLO numbers.
    detections: int
    detection_latency_ms: Optional[float]
    retries: int
    canaries: int
    canary_failures: int
    quarantines: int
    restarts: int
    injected: int
    #: Worker-kill recovery: ``None`` when the scenario did not kill.
    killed: bool
    mttr_s: Optional[float]
    duration_s: float
    req_per_s: float
    p50_ms: float
    p99_ms: float
    snapshot: dict = field(repr=False, default_factory=dict)

    @property
    def accounted(self) -> bool:
        """Every offered request landed in exactly one bucket."""
        return (
            self.correct + self.corrected + self.wrong
            + self.shed + self.failed_loud
        ) == self.offered

    @property
    def silent_wrong(self) -> int:
        """Completed responses that differ from the clean reference."""
        return self.wrong

    def to_row(self) -> Dict[str, object]:
        """One flat benchmark-summary row (JSON-able scalars only)."""
        s = self.scenario
        return {
            "scenario": s.name,
            "site": s.site,
            "modes": "+".join(s.modes),
            "fault_rate": s.fault_rate,
            "mitigation": s.mitigation,
            "workers": s.workers,
            "transport": s.transport,
            "n_bits": s.n_bits,
            "guard_visible": s.guard_visible,
            "offered": self.offered,
            "correct": self.correct,
            "corrected": self.corrected,
            "wrong": self.wrong,
            "shed": self.shed,
            "failed_loud": self.failed_loud,
            "accounted": self.accounted,
            "detections": self.detections,
            "detection_latency_ms": self.detection_latency_ms,
            "retries": self.retries,
            "canaries": self.canaries,
            "canary_failures": self.canary_failures,
            "quarantines": self.quarantines,
            "restarts": self.restarts,
            "injected": self.injected,
            "killed": self.killed,
            "mttr_s": self.mttr_s,
            "duration_s": self.duration_s,
            "req_per_s": self.req_per_s,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
        }

    def summary(self) -> str:
        latency = (
            f", detect {self.detection_latency_ms:.2f} ms"
            if self.detection_latency_ms is not None else ""
        )
        mttr = (
            f", MTTR {self.mttr_s * 1e3:.1f} ms"
            if self.mttr_s is not None else ""
        )
        return (
            f"{self.scenario.name}: {self.offered} offered -> "
            f"{self.correct} correct, {self.corrected} corrected, "
            f"{self.wrong} wrong, {self.shed} shed, "
            f"{self.failed_loud} loud failures; "
            f"{self.detections} detections{latency}, "
            f"{self.retries} retries, {self.quarantines} quarantines, "
            f"{self.restarts} restarts{mttr} "
            f"({self.req_per_s:,.0f} req/s, p99 {self.p99_ms:.2f} ms)"
        )


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
def _kill_one_worker(pool: WorkerPool, delay_s: float,
                     out: dict, stop: threading.Event) -> None:
    """SIGKILL one worker after ``delay_s``; time recovery to full."""
    if stop.wait(delay_s):
        return
    pids = pool.worker_pids()
    if not pids:
        return
    victim = pids[0]
    started = time.perf_counter()
    try:
        os.kill(victim, signal.SIGKILL)
    except ProcessLookupError:
        return
    out["killed"] = True
    # Recovery means the *replacement* is up: the victim's pid has left
    # the roster and the pool is back at full strength. Polling for the
    # head count alone would race the kernel — the corpse can look
    # alive for the first poll and recovery would measure as instant.
    deadline = started + 30.0
    while time.perf_counter() < deadline:
        current = pool.worker_pids()
        if victim not in current and len(current) >= pool.workers:
            out["mttr_s"] = time.perf_counter() - started
            return
        time.sleep(0.001)


def run_soak(scenario: ChaosScenario,
             collector: Optional[Collector] = None) -> SoakReport:
    """Run one scenario end to end and account for every request."""
    config = NacuConfig.for_bits(scenario.n_bits)
    if collector is None:
        collector = Collector()
    # The oracle evaluates in the parent, where no plan is ever armed:
    # the bit-accurate datapath is the reference the fast path is held
    # to everywhere else, so mismatches are corruption, not modelling.
    oracle = BatchEngine(config=config, fast=False)
    rng = np.random.default_rng(scenario.seed)
    requests = make_requests(
        scenario.requests,
        RequestMix(
            weights={mode: 1.0 for mode in scenario.modes},
            max_elements=scenario.max_elements, max_row=scenario.max_row,
        ),
        rng=rng,
    )
    offsets = make_offsets(
        scenario.arrival, scenario.requests, scenario.rate_rps, rng
    )

    kill_state: dict = {"killed": False, "mttr_s": None}
    stop_killer = threading.Event()
    killer: Optional[threading.Thread] = None
    pool = WorkerPool(
        config=config,
        workers=scenario.workers,
        fast=scenario.fast,
        collector=collector,
        resilience=scenario.policy(),
        fault_plan=scenario.fault_plan(config),
        dispatch_wait_s=scenario.dispatch_wait_s,
        transport=scenario.transport,
    )
    try:
        if scenario.kill_after_s > 0:
            killer = threading.Thread(
                target=_kill_one_worker,
                args=(pool, scenario.kill_after_s, kill_state, stop_killer),
                name="nacu-chaos-killer", daemon=True,
            )
            killer.start()
        generator = LoadGenerator(pool, verify_engine=oracle)
        report = generator.run_open(
            requests, offsets, timeout_s=scenario.timeout_s
        )
        if killer is not None:
            killer.join(timeout=35.0)
    finally:
        stop_killer.set()
        pool.close()
    snapshot = pool.telemetry_snapshot()

    counters = snapshot.get("counters", {})
    corrected = int(counters.get("serve.resilience.corrected", 0))
    wrong = int(report.mismatches or 0)
    # ``corrected`` requests completed and verified clean; they cannot
    # overlap ``wrong`` at a guard-visible site, and clamping keeps the
    # fold total even if a non-visible site lets one through both.
    corrected = min(corrected, report.completed - wrong)
    correct = report.completed - corrected - wrong
    detect = snapshot.get("timers", {}).get("serve.resilience.detect")
    detection_latency_ms = (
        detect["total_ns"] / detect["count"] / 1e6
        if detect and detect["count"] else None
    )
    return SoakReport(
        scenario=scenario,
        offered=report.offered,
        correct=correct,
        corrected=corrected,
        wrong=wrong,
        shed=report.sheds,
        failed_loud=report.errors,
        detections=int(counters.get("serve.resilience.verify_failures", 0)),
        detection_latency_ms=detection_latency_ms,
        retries=int(counters.get("serve.resilience.retries", 0)),
        canaries=int(counters.get("serve.resilience.canaries", 0)),
        canary_failures=int(
            counters.get("serve.resilience.canary_failures", 0)
        ),
        quarantines=int(counters.get("serve.resilience.quarantines", 0)),
        restarts=int(counters.get("serve.pool.worker_restarts", 0)),
        injected=int(
            mitigation_summary(ledger_from_snapshot(snapshot))["injected"]
        ),
        killed=bool(kill_state["killed"]),
        mttr_s=kill_state["mttr_s"],
        duration_s=report.duration_s,
        req_per_s=report.req_per_s,
        p50_ms=report.p50_ms,
        p99_ms=report.p99_ms,
        snapshot=snapshot,
    )


def run_sweep(scenarios: Sequence[ChaosScenario]) -> List[SoakReport]:
    """Run each scenario in sequence (pools do not share workers)."""
    return [run_soak(scenario) for scenario in scenarios]


# ----------------------------------------------------------------------
# The canonical sweep
# ----------------------------------------------------------------------
def default_sweep(profile: str = "quick") -> List[ChaosScenario]:
    """The fault rate × site × mitigation grid the harness ships with.

    ``quick`` is the CI-sized story in four cells: a clean control (the
    false-positive guard), the unmitigated corruption baseline, detect-
    only (loud, uncorrected), and the full defence with a worker kill.
    ``soak`` widens the grid with more traffic, a quarantine cell and
    non-output sites whose detection coverage is a *measurement*, not a
    guarantee.
    """
    single_crossing = ("sigmoid", "tanh")
    if profile == "quick":
        n = 240
        base = ChaosScenario(name="", requests=n, rate_rps=4000.0)
        return [
            replace(base, name="clean-control", fault_rate=0.0,
                    mitigation="retry", canary_every=4),
            replace(base, name="unmitigated", fault_rate=0.02,
                    mitigation="none", modes=single_crossing),
            replace(base, name="detect-only", fault_rate=0.01,
                    mitigation="detect", modes=single_crossing),
            replace(base, name="retry-kill", fault_rate=0.005,
                    mitigation="retry", modes=single_crossing,
                    canary_every=8, quarantine_after=5,
                    kill_after_s=0.05),
        ]
    if profile == "soak":
        n = 1000
        base = ChaosScenario(name="", requests=n, rate_rps=5000.0)
        return [
            replace(base, name="clean-control", fault_rate=0.0,
                    mitigation="retry", canary_every=4),
            replace(base, name="unmitigated", fault_rate=0.02,
                    mitigation="none", modes=single_crossing),
            replace(base, name="detect-only", fault_rate=0.01,
                    mitigation="detect", modes=single_crossing),
            replace(base, name="retry", fault_rate=0.005,
                    mitigation="retry", modes=single_crossing,
                    canary_every=8),
            replace(base, name="retry-quarantine-kill", fault_rate=0.005,
                    mitigation="retry", modes=single_crossing,
                    canary_every=8, quarantine_after=4,
                    kill_after_s=0.1),
            # Coverage cells: upsets on interior crossings or other
            # sites may land back in range by the output bus — their
            # wrong-rate is the measured escape rate of the defences
            # there, not a harness failure.
            replace(base, name="coverage-fullmix", fault_rate=0.005,
                    mitigation="retry", canary_every=8),
            replace(base, name="coverage-divider", fault_rate=0.005,
                    site=_plan.DIVIDER_PIPE, mitigation="retry",
                    canary_every=8),
            replace(base, name="coverage-mac", fault_rate=0.005,
                    site=_plan.MAC_ACC, mitigation="retry",
                    canary_every=8),
        ]
    raise ConfigError(
        f"unknown chaos profile {profile!r}; options: quick, soak"
    )
