"""Rendering telemetry snapshots as aligned text tables.

Used by ``tools/telemetry_report.py`` and importable on its own, so tests
can pin the report against a known snapshot without spawning a process.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.telemetry.quantiles import quantiles_from_entry

__all__ = ["render_snapshot", "render_table", "derived_rates"]


def render_table(title: str, header: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """One aligned text table with a ``== title ==`` banner."""
    lines = [f"== {title} =="]
    if not rows:
        return "\n".join(lines + ["(empty)"])
    formatted = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in formatted))
        for i in range(len(header))
    ]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in formatted:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def derived_rates(snapshot: dict) -> Dict[str, float]:
    """Ratios worth reporting that are not stored directly.

    Currently the sigmoid-LUT cache hit rate, the saturation rate per
    overflow-checked element, and the softmax fast-path coverage *per
    stage*: the e^x gather and the fast divide fall back independently
    (``engine.softmax.fast_exp_elements`` /
    ``engine.softmax.fast_div_elements``), so each gets its own share of
    the softmax elements served.

    Every rate guards its denominator: a snapshot from a run that never
    hit softmax (or a hand-edited/merged one whose ``counters`` section
    is missing, ``null``, or holds zero denominators) yields fewer rates,
    never a ``KeyError``/``ZeroDivisionError`` —
    ``tests/telemetry/test_collector.py`` pins this.
    """
    counters = snapshot.get("counters") or {}
    rates: Dict[str, float] = {}

    def _ratio(name: str, numerator_key: str, denominator: float) -> None:
        if denominator and denominator > 0:
            rates[name] = counters.get(numerator_key, 0) / denominator

    hits = counters.get("lut.cache.hit", 0)
    misses = counters.get("lut.cache.miss", 0)
    _ratio("lut_cache_hit_rate", "lut.cache.hit", hits + misses)
    _ratio("saturation_rate", "fx.saturate.events",
           counters.get("fx.overflow.checked", 0))
    softmax_elements = counters.get("engine.softmax.elements", 0)
    _ratio("softmax_fast_exp_coverage",
           "engine.softmax.fast_exp_elements", softmax_elements)
    _ratio("softmax_fast_div_coverage",
           "engine.softmax.fast_div_elements", softmax_elements)
    served = counters.get("serve.requests", 0)
    _ratio("serve_shed_rate", "serve.shed",
           served + counters.get("serve.shed", 0))
    _ratio("serve_trace_sample_rate", "serve.traced", served)
    return rates


def _histogram_rows(hist: Dict[str, int], top: int) -> List[List[object]]:
    items = sorted(hist.items(), key=lambda kv: (-kv[1], int(kv[0])))[:top]
    total = sum(hist.values())
    return [
        [bucket, occurrences, f"{100.0 * occurrences / total:.1f}%"]
        for bucket, occurrences in items
    ]


def render_snapshot(snapshot: dict, top: int = 8) -> str:
    """The full human-readable report for one (possibly merged) snapshot."""
    sections: List[str] = []

    counters = snapshot.get("counters", {})
    if counters:
        sections.append(render_table(
            "counters", ["counter", "value"],
            [[name, value] for name, value in sorted(counters.items())],
        ))

    rates = derived_rates(snapshot)
    if rates:
        sections.append(render_table(
            "derived rates", ["rate", "value"],
            [[name, f"{value:.4f}"] for name, value in sorted(rates.items())],
        ))

    cycles = snapshot.get("cycles", {})
    if cycles:
        hw_ns = snapshot.get("hw_ns", {})
        rows = [
            [mode, cycles[mode],
             f"{hw_ns[mode]:.1f}" if mode in hw_ns else "-"]
            for mode in sorted(cycles)
        ]
        sections.append(render_table(
            "paper-model cycles", ["mode", "cycles", "hw_ns"], rows))

    timers = snapshot.get("timers", {})
    if timers:
        rows = [
            [name, timer["count"], f"{timer['total_ns'] / 1e6:.3f}",
             f"{timer['total_ns'] / max(timer['count'], 1) / 1e3:.1f}"]
            for name, timer in sorted(timers.items())
        ]
        sections.append(render_table(
            "wall-clock spans", ["span", "count", "total_ms", "mean_us"], rows))

    dists = snapshot.get("quantiles") or {}
    if dists:
        rows = []
        for name in sorted(dists):
            entry = dists[name]
            count = entry.get("count", 0)
            mean_us = (
                entry.get("sum", 0) / count / 1e3 if count else 0.0
            )
            ps = quantiles_from_entry(entry)
            rows.append([
                name, count, f"{mean_us:.1f}",
                f"{ps['p50'] / 1e3:.1f}", f"{ps['p90'] / 1e3:.1f}",
                f"{ps['p99'] / 1e3:.1f}", f"{ps['p999'] / 1e3:.1f}",
            ])
        sections.append(render_table(
            "latency quantiles (us)",
            ["metric", "count", "mean", "p50", "p90", "p99", "p999"],
            rows,
        ))

    histograms = snapshot.get("histograms", {})
    for name in sorted(histograms):
        sections.append(render_table(
            f"histogram: {name} (top {top})",
            ["bucket", "count", "share"],
            _histogram_rows(histograms[name], top),
        ))

    errors = snapshot.get("errors", {})
    if errors:
        rows = [
            [name, entry["n"], f"{entry['rmse']:.3e}",
             f"{entry['max_abs']:.3e}"]
            for name, entry in sorted(errors.items())
        ]
        sections.append(render_table(
            "fixed-point vs float error", ["layer", "n", "rmse", "max_abs"],
            rows))

    if not sections:
        return "(snapshot holds no telemetry)"
    return "\n\n".join(sections)
