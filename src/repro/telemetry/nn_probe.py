"""Per-layer fixed-point-vs-float error probes for :mod:`repro.nn`.

The network code calls :func:`probe_layer_error` at each layer boundary;
with telemetry off it is a single ``None`` check, with telemetry on it
folds the layer's quantised activations against the float64 reference
into the collector's running error stats (count, RMSE, max abs error) —
the Section VI view of how quantisation error accumulates layer by
layer, available for any forward pass instead of only inside the
experiment drivers.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.telemetry.collector import Collector, resolve

__all__ = ["probe_layer_error"]


def probe_layer_error(
    name: str,
    values,
    reference,
    collector: Optional[Collector] = None,
) -> None:
    """Record ``values`` (fixed point, as floats) vs ``reference``.

    ``reference`` may be an array or a zero-argument callable returning
    one — the callable form lets callers skip computing the float
    reference entirely when telemetry is off.
    """
    tel = resolve(collector)
    if tel is None:
        return
    if callable(reference):
        reference = reference()
    tel.record_error(
        f"nn.{name}",
        np.asarray(values, dtype=np.float64),
        np.asarray(reference, dtype=np.float64),
    )
