"""Streaming latency percentiles over fixed log-spaced integer buckets.

The serving layer needs p50/p99/p999 over millions of requests without
holding the samples, and the sharded runner needs shard snapshots that
recombine *exactly* — the merged percentile must be byte-identical to
the percentile one collector would have reported had it seen all the
traffic. Both follow from one design rule: the bucket boundaries are a
**fixed** function of the value (no per-instance adaptation), and every
derived statistic is computed from the bucket counts alone.

The scheme is HDR-histogram-style base-2 bucketing in pure integer
arithmetic (``int.bit_length``, shifts — no float ``log``): values below
``2**SUB_BITS`` get one bucket each (exact), and every octave above is
split into ``2**SUB_BITS`` equal sub-buckets, bounding the relative
quantile error at ``2**-SUB_BITS`` (~3.1% for the default ``SUB_BITS=5``)
whatever the magnitude. Merging two snapshots is summing their sparse
``{bucket: count}`` dicts — associative, commutative, and deterministic,
so ``merge_snapshots`` keeps its serial==jobs parity guarantee
(``tests/telemetry/test_quantiles.py`` pins byte-identity over process
splits).

Reported quantiles are the bucket's **upper bound** (clamped to the
observed min/max): a deterministic, conservative estimate — a reported
p99 is never below the true p99 by more than the bucket's width.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "SUB_BITS",
    "StreamingQuantiles",
    "bucket_index",
    "bucket_index_array",
    "bucket_upper",
    "merge_quantile_entries",
    "quantile_from_entry",
    "quantiles_from_entry",
]

#: Sub-buckets per octave as a power of two. 5 → 32 sub-buckets → the
#: reported quantile is within 1/32 (3.1%) of the true sample value.
SUB_BITS = 5

_LINEAR_LIMIT = 1 << SUB_BITS
_SUB_MASK = _LINEAR_LIMIT - 1

#: The default snapshot quantiles: p50 / p90 / p99 / p999.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99, 0.999)


def bucket_index(value: int) -> int:
    """The fixed bucket for a non-negative integer ``value``.

    Values under ``2**SUB_BITS`` map to themselves (width-1 buckets);
    above that, the octave index and the top ``SUB_BITS`` mantissa bits
    form the bucket — pure integer arithmetic, so the mapping is
    identical on every host and process.
    """
    value = int(value)
    if value < 0:
        # Clock skew / subtraction order can only produce this through a
        # bug, but a histogram must never throw on an observation.
        value = 0
    if value < _LINEAR_LIMIT:
        return value
    exponent = value.bit_length() - 1
    sub = (value >> (exponent - SUB_BITS)) & _SUB_MASK
    return ((exponent - SUB_BITS + 1) << SUB_BITS) + sub


def bucket_index_array(values: np.ndarray) -> np.ndarray:
    """Vectorised :func:`bucket_index` over an int64 array.

    The bit length comes from a branchless binary reduction (six shift
    passes), so the result is bit-identical to the scalar path — the
    serving layer buckets one whole batch of request latencies at once.
    """
    v = np.maximum(np.asarray(values, dtype=np.int64), 0)
    # bit_length(v) for v > 0 via binary search on the high half.
    bits = np.zeros(v.shape, dtype=np.int64)
    work = v.copy()
    for shift in (32, 16, 8, 4, 2, 1):
        high = work >> shift
        has_high = high > 0
        bits += np.where(has_high, shift, 0)
        work = np.where(has_high, high, work)
    # bits == bit_length - 1 for v > 0 (position of the leading one).
    exponent = bits
    linear = v < _LINEAR_LIMIT
    shifted = v >> np.maximum(exponent - SUB_BITS, 0)
    sub = shifted & _SUB_MASK
    log_index = ((exponent - SUB_BITS + 1) << SUB_BITS) + sub
    return np.where(linear, v, log_index)


def bucket_upper(index: int) -> int:
    """The largest value bucket ``index`` can hold (its inclusive bound)."""
    index = int(index)
    if index < _LINEAR_LIMIT:
        return index
    block, offset = divmod(index - _LINEAR_LIMIT, _LINEAR_LIMIT)
    exponent = SUB_BITS + block
    width = 1 << (exponent - SUB_BITS)
    low = (_LINEAR_LIMIT + offset) << (exponent - SUB_BITS)
    return low + width - 1


class StreamingQuantiles:
    """One metric's streaming distribution: sparse counts over fixed buckets.

    Tracks exact ``count`` / ``sum`` / ``min`` / ``max`` alongside the
    bucket counts, so means stay exact and reported quantiles clamp to
    the true observed range.
    """

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min = 0
        self.max = 0

    def observe(self, value: int) -> None:
        """Fold one non-negative integer observation in."""
        value = max(int(value), 0)
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        if self.count == 0 or value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.count += 1
        self.total += value

    def observe_many(self, values) -> None:
        """Fold an array of observations in one vectorised pass."""
        v = np.maximum(np.asarray(values, dtype=np.int64).reshape(-1), 0)
        if v.size == 0:
            return
        indexes = bucket_index_array(v)
        uniques, counts = np.unique(indexes, return_counts=True)
        for index, occurrences in zip(uniques.tolist(), counts.tolist()):
            self.buckets[index] = self.buckets.get(index, 0) + occurrences
        lo = int(v.min())
        if self.count == 0 or lo < self.min:
            self.min = lo
        self.max = max(self.max, int(v.max()))
        self.count += int(v.size)
        self.total += int(v.sum(dtype=np.int64))

    def snapshot(self) -> dict:
        """JSON-able state: everything merge needs, nothing more."""
        return {
            "scheme": f"log2/{SUB_BITS}",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


def quantile_from_entry(entry: Mapping, q: float) -> int:
    """The ``q``-quantile of one snapshot entry (deterministic).

    Walks the sorted buckets to the ``ceil(q * count)``-th observation
    and reports that bucket's upper bound, clamped into ``[min, max]``.
    Returns 0 for an empty entry.
    """
    count = int(entry.get("count", 0))
    if count <= 0:
        return 0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    # ceil without float drift: the k-th order statistic, 1-based, with
    # q held in parts-per-million so 0.999 * count never rounds unstably.
    rank = max(1, min(count, -(-round(q * 1_000_000) * count // 1_000_000)))
    cumulative = 0
    buckets = entry.get("buckets", {})
    for index in sorted(int(k) for k in buckets):
        cumulative += int(buckets[str(index)])
        if cumulative >= rank:
            bound = bucket_upper(index)
            return max(int(entry.get("min", 0)),
                       min(bound, int(entry.get("max", bound))))
    return int(entry.get("max", 0))


def quantiles_from_entry(
    entry: Mapping, qs: Sequence[float] = DEFAULT_QUANTILES
) -> Dict[str, int]:
    """A ``{"p50": ..., "p99": ...}`` view of one snapshot entry."""
    out: Dict[str, int] = {}
    for q in qs:
        label = f"p{q * 100:g}".replace(".", "")
        out[label] = quantile_from_entry(entry, q)
    return out


def merge_quantile_entries(entries: Iterable[Mapping]) -> dict:
    """Combine snapshot entries: summed buckets, exact count/sum/min/max.

    The merged entry is byte-identical (as sorted JSON) to the entry one
    instance observing all the traffic would produce — the property the
    sharded runner's serial==jobs parity rests on.
    """
    merged = StreamingQuantiles()
    for entry in entries:
        count = int(entry.get("count", 0))
        if count == 0:
            continue
        for bucket, occurrences in entry.get("buckets", {}).items():
            key = int(bucket)
            merged.buckets[key] = merged.buckets.get(key, 0) + int(occurrences)
        lo, hi = int(entry.get("min", 0)), int(entry.get("max", 0))
        if merged.count == 0 or lo < merged.min:
            merged.min = lo
        merged.max = max(merged.max, hi)
        merged.count += count
        merged.total += int(entry.get("sum", 0))
    return merged.snapshot()
