"""Export surfaces: Prometheus text exposition, JSONL traces, timelines.

Two consumers, two formats:

* **Scrapers** get :func:`render_prometheus` — the Prometheus text
  exposition format (v0.0.4) over one (possibly merged) snapshot:
  counters as ``repro_counter_total``, span timers as ``_sum``/``_count``
  pairs, quantile distributions as native summaries (``quantile=`` label
  per p50/p90/p99/p999 plus ``_bucket{le=...}`` cumulative buckets), and
  SLO budget gauges when a policy is given. Metric names carry the
  dotted repo name in a label (Prometheus names cannot hold dots), so
  one family per metric kind keeps the exposition schema stable as
  instrumentation grows.
* **Humans** get the JSONL trace dump (:func:`write_traces_jsonl` /
  :func:`read_traces_jsonl`) and :func:`render_trace_timeline` — an
  ASCII per-stage timeline of one request's life from submit to future
  resolution, the view ``tools/trace_report.py`` renders.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Optional, Sequence

from repro.telemetry.quantiles import (
    DEFAULT_QUANTILES,
    bucket_upper,
    quantile_from_entry,
)
from repro.telemetry.slo import SLOPolicy, slo_summary

__all__ = [
    "render_prometheus",
    "render_trace_timeline",
    "read_traces_jsonl",
    "write_traces_jsonl",
]


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def render_prometheus(
    snapshot: dict,
    policies: Sequence[SLOPolicy] = (),
    quantiles: Sequence[float] = DEFAULT_QUANTILES,
) -> str:
    """One snapshot as Prometheus text exposition (ends with a newline)."""
    lines: List[str] = []

    counters = snapshot.get("counters") or {}
    if counters:
        lines.append("# TYPE repro_counter_total counter")
        for name in sorted(counters):
            lines.append(
                f'repro_counter_total{{counter="{_escape(name)}"}} '
                f"{int(counters[name])}"
            )

    timers = snapshot.get("timers") or {}
    if timers:
        lines.append("# TYPE repro_span_seconds summary")
        for name in sorted(timers):
            timer = timers[name]
            label = f'span="{_escape(name)}"'
            lines.append(
                f"repro_span_seconds_count{{{label}}} "
                f"{int(timer.get('count', 0))}"
            )
            lines.append(
                f"repro_span_seconds_sum{{{label}}} "
                f"{timer.get('total_ns', 0) / 1e9:.9f}"
            )

    cycles = snapshot.get("cycles") or {}
    if cycles:
        lines.append("# TYPE repro_paper_cycles_total counter")
        for mode in sorted(cycles):
            lines.append(
                f'repro_paper_cycles_total{{mode="{_escape(mode)}"}} '
                f"{int(cycles[mode])}"
            )

    dists = snapshot.get("quantiles") or {}
    if dists:
        lines.append("# TYPE repro_latency_seconds summary")
        for name in sorted(dists):
            entry = dists[name]
            label = f'metric="{_escape(name)}"'
            for q in quantiles:
                value_ns = quantile_from_entry(entry, q)
                lines.append(
                    f'repro_latency_seconds{{{label},quantile="{q:g}"}} '
                    f"{value_ns / 1e9:.9f}"
                )
            lines.append(
                f"repro_latency_seconds_count{{{label}}} "
                f"{int(entry.get('count', 0))}"
            )
            lines.append(
                f"repro_latency_seconds_sum{{{label}}} "
                f"{int(entry.get('sum', 0)) / 1e9:.9f}"
            )
        lines.append("# TYPE repro_latency_bucket histogram")
        for name in sorted(dists):
            entry = dists[name]
            buckets = entry.get("buckets") or {}
            cumulative = 0
            for index in sorted(int(k) for k in buckets):
                cumulative += int(buckets[str(index)])
                lines.append(
                    f'repro_latency_bucket{{metric="{_escape(name)}",'
                    f'le="{bucket_upper(index) / 1e9:.9f}"}} {cumulative}'
                )
            lines.append(
                f'repro_latency_bucket{{metric="{_escape(name)}",'
                f'le="+Inf"}} {int(entry.get("count", 0))}'
            )

    slo_lines: List[str] = []
    for policy in policies:
        summary = slo_summary(snapshot, policy)
        label = f'slo="{_escape(policy.name)}"'
        slo_lines.append(
            f"repro_slo_compliance{{{label}}} {summary['compliance']:.9f}"
        )
        slo_lines.append(
            f"repro_slo_budget_burn{{{label}}} {summary['budget_burn']:.9f}"
        )
        slo_lines.append(
            f"repro_slo_violated{{{label}}} {int(summary['violated'])}"
        )
    if slo_lines:
        lines.append("# TYPE repro_slo_compliance gauge")
        lines.extend(slo_lines)

    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# JSONL trace dump
# ----------------------------------------------------------------------
def write_traces_jsonl(traces: Iterable, path) -> int:
    """Write traces (dicts or :class:`RequestTrace`) one-per-line; returns
    the number written."""
    path = pathlib.Path(path)
    written = 0
    with path.open("w") as handle:
        for trace in traces:
            record = trace if isinstance(trace, dict) else trace.to_dict()
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            written += 1
    return written


def read_traces_jsonl(path) -> List[dict]:
    """Load a JSONL trace dump; raises ``ValueError`` on a corrupt line."""
    records: List[dict] = []
    for lineno, line in enumerate(
        pathlib.Path(path).read_text().splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise ValueError(f"line {lineno} is not valid JSON: {exc}") from None
        if not isinstance(record, dict):
            raise ValueError(f"line {lineno} is not a trace object")
        records.append(record)
    return records


# ----------------------------------------------------------------------
# Per-stage timeline renderer
# ----------------------------------------------------------------------
def _format_ns(ns: Optional[int]) -> str:
    if ns is None:
        return "-"
    if ns >= 1_000_000:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1_000:
        return f"{ns / 1e3:.1f}us"
    return f"{ns}ns"


def render_trace_timeline(trace: dict, width: int = 48) -> str:
    """One trace as an ASCII per-stage timeline.

    Each stage gets a bar positioned over the request's submit→finish
    interval; queue wait renders as its own leading stage so the view
    shows where a slow request actually spent its life.
    """
    latency = trace.get("latency_ns")
    header = (
        f"trace #{trace.get('trace_id', '?')} {trace.get('mode', '?')} "
        f"[{trace.get('status', '?')}] {trace.get('elements', '?')} el, "
        f"latency {_format_ns(latency)}, batch fill "
        f"{trace.get('batch_fill', '-')} "
        f"({trace.get('batch_elements', '-')} el)"
    )
    rows: List[tuple] = []
    queue_wait = trace.get("queue_wait_ns")
    if queue_wait is not None:
        rows.append(("queue.wait", 0, queue_wait))
    for stage in trace.get("stages", []):
        name, start_ns, dur_ns = stage[0], int(stage[1]), int(stage[2])
        rows.append((name, start_ns, dur_ns))
    if not rows:
        return header + "\n  (no stage events)"

    span = max(latency or 0, max(start + dur for _, start, dur in rows), 1)
    name_width = max(len(name) for name, _, _ in rows)
    lines = [header]
    for name, start, dur in rows:
        left = min(int(width * start / span), width - 1)
        length = max(int(width * dur / span), 1)
        length = min(length, width - left)
        bar = " " * left + "#" * length
        lines.append(
            f"  {name.ljust(name_width)} |{bar.ljust(width)}| "
            f"+{_format_ns(start)} {_format_ns(dur)}"
        )
    faults = trace.get("faults") or {}
    if faults:
        events = ", ".join(f"{k}={v}" for k, v in sorted(faults.items()))
        lines.append(f"  faults: {events}")
    return "\n".join(lines)
