"""SLO accounting: latency targets, error budgets, burn rates.

An :class:`SLOPolicy` states the service-level objective — "``objective``
of requests finish within ``latency_ms`` and without error" — and the
:class:`SLOAccountant` classifies every finished request against it:

* **good** — resolved without error, within the latency target;
* **bad** — resolved slower than the target, or failed with an error;
* **shed** — refused at admission (``BackpressureError``). Sheds burn
  the error budget too: a user the server turned away is a user the
  objective failed, so ``bad + shed`` is the budget-consuming count.

Like the fault ledger, the accountant keeps its own counts *and* mirrors
them into the resolved telemetry collector (``slo.<name>.good`` /
``.bad`` / ``.shed`` counters), so SLO state merges across shards with
the same exactness as every other counter and survives in snapshots
without the accountant object.

The derived view (:func:`slo_summary` / :meth:`SLOAccountant.summary`)
reports the compliance ratio, the total error budget for the traffic
seen (``(1 - objective) * total``), and the budget burn — ``>= 1.0``
means the objective is violated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

__all__ = ["SLOPolicy", "SLOAccountant", "slo_summary"]


@dataclass(frozen=True)
class SLOPolicy:
    """One service-level objective over the serving datapath."""

    #: Metric namespace: counters land under ``slo.<name>.*``.
    name: str = "serve"
    #: The latency target a good request must meet, in milliseconds.
    latency_ms: float = 5.0
    #: The fraction of requests that must be good (e.g. 0.999 = "three
    #: nines"): the error budget is the remaining fraction.
    objective: float = 0.999

    def __post_init__(self) -> None:
        if self.latency_ms <= 0:
            raise ValueError("latency_ms must be positive")
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")

    @property
    def latency_ns(self) -> int:
        return int(self.latency_ms * 1e6)


class SLOAccountant:
    """Good/bad/shed classification against one policy."""

    __slots__ = ("policy", "collector", "stats")

    def __init__(self, policy: Optional[SLOPolicy] = None, collector=None):
        self.policy = policy if policy is not None else SLOPolicy()
        #: Injected collector; ``None`` resolves the module registry at
        #: each record, matching every other instrumentation site.
        self.collector = collector
        #: Own ledger, available without telemetry (mirrors ``slo.*``).
        self.stats: Dict[str, int] = {"good": 0, "bad": 0, "shed": 0}

    # ------------------------------------------------------------------
    def _count(self, outcome: str, n: int) -> None:
        if not n:
            return
        self.stats[outcome] += n
        from repro.telemetry import collector as _telemetry

        tel = _telemetry.resolve(self.collector)
        if tel is not None:
            tel.count(f"slo.{self.policy.name}.{outcome}", n)

    def record(self, latency_ns: int, ok: bool = True) -> bool:
        """Classify one finished request; returns whether it was good."""
        good = ok and latency_ns <= self.policy.latency_ns
        self._count("good" if good else "bad", 1)
        return good

    def record_many(self, latencies_ns, ok: bool = True) -> int:
        """Classify a batch of finished requests; returns the good count."""
        values = np.asarray(latencies_ns)
        good = (
            int(np.count_nonzero(values <= self.policy.latency_ns))
            if ok else 0
        )
        self._count("good", good)
        self._count("bad", int(values.size) - good)
        return good

    def record_shed(self, n: int = 1) -> None:
        """Account requests refused at admission (budget-burning)."""
        self._count("shed", n)

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """The derived budget view of this accountant's own ledger."""
        return _derive(self.policy, **self.stats)

    def __repr__(self) -> str:
        return (
            f"<SLOAccountant {self.policy.name}: {self.stats['good']} good, "
            f"{self.stats['bad']} bad, {self.stats['shed']} shed>"
        )


def _derive(policy: SLOPolicy, good: int, bad: int, shed: int) -> dict:
    total = good + bad + shed
    burned = bad + shed
    budget = (1.0 - policy.objective) * total
    return {
        "slo": policy.name,
        "latency_ms": policy.latency_ms,
        "objective": policy.objective,
        "total": total,
        "good": good,
        "bad": bad,
        "shed": shed,
        "compliance": good / total if total else 1.0,
        "error_budget": budget,
        "budget_burn": burned / budget if budget > 0 else 0.0,
        "violated": total > 0 and good / total < policy.objective,
    }


def slo_summary(snapshot: dict, policy: SLOPolicy) -> dict:
    """The budget view reconstructed from a (possibly merged) snapshot.

    Reads the ``slo.<name>.*`` counters the accountant mirrored, so a
    merge of shard snapshots yields exactly the totals one accountant
    would hold — no extra merge rules needed.
    """
    counters = snapshot.get("counters") or {}
    prefix = f"slo.{policy.name}."
    return _derive(
        policy,
        good=int(counters.get(prefix + "good", 0)),
        bad=int(counters.get(prefix + "bad", 0)),
        shed=int(counters.get(prefix + "shed", 0)),
    )
