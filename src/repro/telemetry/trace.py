"""Sampled per-request tracing across the serving datapath.

One :class:`RequestTrace` follows a request from
``InferenceServer.submit()`` through micro-batcher coalescing, the
dispatcher, the engine, and the datapath's exp/divide/fold stages, plus
any fault-mitigation events (injected/detected/corrected) the request's
batch crossed — and lands in a bounded ring buffer for the trace report.

Three design rules keep this serving-grade:

* **Sampling is the admission control.** The tracer keeps every Nth
  request (``sample_every``, counter-based so a fixed request stream
  always samples the same requests). The dispatcher samples whole
  batches in one counter jump (:meth:`Tracer.sample_batch`), so
  unsampled requests pay *nothing* on the submit fast path.
* **Stage events are recorded once per batch, fanned out per trace.**
  A coalesced batch runs the engine once, so the dispatcher installs one
  thread-local :class:`StageSink` around the engine call; datapath
  stages emit into it only when it is present (one module-attribute load
  and a ``None`` check when tracing is off — the same contract as the
  telemetry and fault registries), and the finished event list is shared
  by every sampled trace in the batch.
* **The ring buffer bounds memory.** Retired traces go into a
  ``deque(maxlen=capacity)``; a soak that serves millions of requests
  holds at most ``capacity`` traces, the newest ones.

The tracer mirrors the telemetry registry: module-level ``_active``
reference, :func:`enable_tracing` / :func:`disable_tracing` /
:class:`use_tracer` scoping, and ``resolve(override)`` for injection.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Dict, List, Optional

__all__ = [
    "RequestTrace",
    "StageSink",
    "Tracer",
    "current_sink",
    "disable_tracing",
    "emit_fault",
    "emit_stage",
    "enable_tracing",
    "get_tracer",
    "resolve",
    "set_tracer",
    "use_sink",
    "use_tracer",
]


class RequestTrace:
    """One sampled request's lifecycle, from submit to future resolution."""

    __slots__ = (
        "trace_id", "mode", "elements", "submit_ns", "dispatch_ns",
        "finish_ns", "batch_fill", "batch_elements", "stages", "faults",
        "status",
    )

    def __init__(self, trace_id: int, mode: str, elements: int,
                 submit_ns: Optional[int] = None):
        self.trace_id = trace_id
        self.mode = mode
        self.elements = elements
        self.submit_ns = (
            submit_ns if submit_ns is not None else time.perf_counter_ns()
        )
        self.dispatch_ns: Optional[int] = None
        self.finish_ns: Optional[int] = None
        #: How many requests / elements the owning batch fused.
        self.batch_fill: Optional[int] = None
        self.batch_elements: Optional[int] = None
        #: ``[name, start_ns, dur_ns]`` triples, start relative to submit.
        self.stages: List[List] = []
        #: Fault-mitigation event counts the batch crossed
        #: (``injected.<site>`` / ``corrected.parity`` / ...).
        self.faults: Dict[str, int] = {}
        #: ``ok`` / ``error`` / ``shed`` / ``pending``.
        self.status = "pending"

    # ------------------------------------------------------------------
    @property
    def queue_wait_ns(self) -> Optional[int]:
        if self.dispatch_ns is None:
            return None
        return self.dispatch_ns - self.submit_ns

    @property
    def latency_ns(self) -> Optional[int]:
        if self.finish_ns is None:
            return None
        return self.finish_ns - self.submit_ns

    def add_stage(self, name: str, start_ns: int, dur_ns: int) -> None:
        """Record one stage span (absolute start; stored submit-relative)."""
        self.stages.append([name, start_ns - self.submit_ns, dur_ns])

    def to_dict(self) -> dict:
        """JSON-able form for the JSONL dump and the timeline renderer."""
        return {
            "trace_id": self.trace_id,
            "mode": self.mode,
            "elements": self.elements,
            "status": self.status,
            "queue_wait_ns": self.queue_wait_ns,
            "latency_ns": self.latency_ns,
            "batch_fill": self.batch_fill,
            "batch_elements": self.batch_elements,
            "stages": [list(stage) for stage in self.stages],
            "faults": dict(self.faults),
        }

    def __repr__(self) -> str:
        return (
            f"<RequestTrace #{self.trace_id} {self.mode} "
            f"{self.elements} el, {self.status}>"
        )


class StageSink:
    """Per-batch event buffer the datapath stages emit into.

    The dispatcher installs one sink around each engine call; stages
    append ``(name, start_ns, dur_ns)`` and fault hooks add event
    counts. :meth:`fan_out` copies the collected batch timeline into
    every sampled member trace.
    """

    __slots__ = ("events", "faults")

    def __init__(self) -> None:
        self.events: List[tuple] = []
        self.faults: Dict[str, int] = {}

    def emit(self, name: str, start_ns: int, dur_ns: int) -> None:
        self.events.append((name, start_ns, dur_ns))

    def emit_fault(self, name: str, n: int) -> None:
        self.faults[name] = self.faults.get(name, 0) + int(n)

    def fan_out(self, traces) -> None:
        for trace in traces:
            for name, start_ns, dur_ns in self.events:
                trace.add_stage(name, start_ns, dur_ns)
            for name, n in self.faults.items():
                trace.faults[name] = trace.faults.get(name, 0) + n


class Tracer:
    """Sampling policy + bounded retirement ring for finished traces."""

    def __init__(self, sample_every: int = 64, capacity: int = 1024):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sample_every = sample_every
        self.capacity = capacity
        self._seen = 0
        self._ids = itertools.count()
        self._ring: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def maybe_trace(self, mode: str, elements: int,
                    submit_ns: Optional[int] = None) -> Optional[RequestTrace]:
        """A new trace for every ``sample_every``-th call, else ``None``.

        Counter-based (not random): a fixed request stream samples the
        same requests every run, which keeps smoke tests deterministic.
        """
        seen = self._seen
        self._seen = seen + 1
        if seen % self.sample_every:
            return None
        return self.begin(mode, elements, submit_ns)

    def sample_batch(self, n: int) -> range:
        """The local indices sampled among the next ``n`` requests.

        One counter jump replaces ``n`` :meth:`maybe_trace` calls — the
        dispatcher asks once per coalesced batch and touches only the
        sampled members, so unsampled requests cost *nothing*. The
        selected positions are exactly the ones ``n`` sequential
        :meth:`maybe_trace` calls would have sampled.
        """
        start = self._seen
        self._seen = start + n
        return range(-start % self.sample_every, n, self.sample_every)

    def begin(self, mode: str, elements: int,
              submit_ns: Optional[int] = None) -> RequestTrace:
        """Open a trace unconditionally (sampling already decided)."""
        return RequestTrace(next(self._ids), mode, elements, submit_ns)

    def retire(self, trace: RequestTrace) -> None:
        """Park a finished trace in the ring (oldest evicted first)."""
        with self._lock:
            self._ring.append(trace)

    def retire_many(self, traces) -> None:
        """Park a batch of finished traces under one lock acquisition."""
        with self._lock:
            self._ring.extend(traces)

    def traces(self) -> List[RequestTrace]:
        """The retained traces, oldest first."""
        with self._lock:
            return list(self._ring)

    def snapshot(self) -> List[dict]:
        """JSON-able dicts of the retained traces, oldest first."""
        return [trace.to_dict() for trace in self.traces()]

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:
        return (
            f"<Tracer 1/{self.sample_every} sampling, "
            f"{len(self._ring)}/{self.capacity} retained>"
        )


# ----------------------------------------------------------------------
# Module registry (mirrors repro.telemetry.collector)
# ----------------------------------------------------------------------
_active: Optional[Tracer] = None


def get_tracer() -> Optional[Tracer]:
    """The registered tracer, or ``None`` when tracing is off."""
    return _active


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` (or ``None`` to disable); returns the old one."""
    global _active
    previous = _active
    _active = tracer
    return previous


def enable_tracing(tracer: Optional[Tracer] = None, **kwargs) -> Tracer:
    """Turn tracing on process-wide; returns the active tracer."""
    global _active
    if tracer is None:
        tracer = _active if _active is not None else Tracer(**kwargs)
    _active = tracer
    return tracer


def disable_tracing() -> Optional[Tracer]:
    """Turn tracing off; returns the tracer that was active."""
    return set_tracer(None)


def resolve(override: Optional[Tracer] = None) -> Optional[Tracer]:
    """Injected tracer wins; otherwise the module registry decides."""
    return override if override is not None else _active


class use_tracer:
    """``with use_tracer(t):`` — scoped registry install, for tests."""

    def __init__(self, tracer: Optional[Tracer]):
        self._tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Optional[Tracer]:
        self._previous = set_tracer(self._tracer)
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> None:
        set_tracer(self._previous)


# ----------------------------------------------------------------------
# Thread-local stage-sink context (set per batch by the dispatcher)
# ----------------------------------------------------------------------
_sink_local = threading.local()


def current_sink() -> Optional[StageSink]:
    """The batch's stage sink on this thread, or ``None`` — the one check
    every datapath stage hook pays when tracing is off."""
    return getattr(_sink_local, "sink", None)


class use_sink:
    """``with use_sink(sink):`` — scoped install on the current thread."""

    def __init__(self, sink: Optional[StageSink]):
        self._sink = sink
        self._previous: Optional[StageSink] = None

    def __enter__(self) -> Optional[StageSink]:
        self._previous = getattr(_sink_local, "sink", None)
        _sink_local.sink = self._sink
        return self._sink

    def __exit__(self, exc_type, exc, tb) -> None:
        _sink_local.sink = self._previous


def emit_stage(name: str, start_ns: int, dur_ns: int) -> None:
    """Record a stage span into the current sink, if one is installed."""
    sink = getattr(_sink_local, "sink", None)
    if sink is not None:
        sink.emit(name, start_ns, dur_ns)


def emit_fault(name: str, n: int) -> None:
    """Attach a fault-event count to the current sink, if one is installed."""
    sink = getattr(_sink_local, "sink", None)
    if sink is not None:
        sink.emit_fault(name, n)
