"""Opt-in datapath telemetry: counters, histograms, timers, cycle ledgers.

The instrumentation the paper's evaluation implies but the model never
had: how often the datapath saturates, which LUT segments are hot, how
many paper-model cycles a workload consumed, how quantisation error
accumulates per NN layer. Everything is off by default and costs one
``None`` check per batch-level call until :func:`enable` installs a
:class:`Collector` (or one is injected via the ``collector=`` parameters
on :class:`~repro.nacu.unit.Nacu` / :class:`~repro.engine.BatchEngine`).

The serving observability layer rides the same registry pattern:

* :mod:`.quantiles` — streaming p50/p99/p999 over fixed log-spaced
  buckets whose shard snapshots merge *exactly*;
* :mod:`.trace` — sampled per-request traces with per-stage timelines
  and fault events, retained in a bounded ring buffer;
* :mod:`.slo` — latency/error-budget targets with good/bad/shed
  accounting (sheds burn budget);
* :mod:`.export` — Prometheus text exposition and a JSONL trace dump.

>>> from repro import telemetry
>>> from repro.engine import BatchEngine
>>> with telemetry.use_collector(telemetry.Collector()) as tel:
...     BatchEngine.for_bits(16).softmax([[1.0, 2.0, 0.5]])
...     snapshot = tel.snapshot()      # doctest: +SKIP
"""

from repro.telemetry.collector import (
    Collector,
    disable,
    enable,
    get_collector,
    merge_snapshots,
    resolve,
    set_collector,
    use_collector,
)
from repro.telemetry.export import (
    read_traces_jsonl,
    render_prometheus,
    render_trace_timeline,
    write_traces_jsonl,
)
from repro.telemetry.nn_probe import probe_layer_error
from repro.telemetry.quantiles import (
    StreamingQuantiles,
    merge_quantile_entries,
    quantile_from_entry,
    quantiles_from_entry,
)
from repro.telemetry.report import derived_rates, render_snapshot, render_table
from repro.telemetry.slo import SLOAccountant, SLOPolicy, slo_summary
from repro.telemetry.trace import (
    RequestTrace,
    StageSink,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Collector",
    "RequestTrace",
    "SLOAccountant",
    "SLOPolicy",
    "StageSink",
    "StreamingQuantiles",
    "Tracer",
    "disable",
    "disable_tracing",
    "enable",
    "enable_tracing",
    "get_collector",
    "get_tracer",
    "merge_quantile_entries",
    "merge_snapshots",
    "probe_layer_error",
    "derived_rates",
    "quantile_from_entry",
    "quantiles_from_entry",
    "read_traces_jsonl",
    "render_prometheus",
    "render_snapshot",
    "render_table",
    "render_trace_timeline",
    "resolve",
    "set_collector",
    "set_tracer",
    "slo_summary",
    "use_collector",
    "use_tracer",
    "write_traces_jsonl",
]
