"""Opt-in datapath telemetry: counters, histograms, timers, cycle ledgers.

The instrumentation the paper's evaluation implies but the model never
had: how often the datapath saturates, which LUT segments are hot, how
many paper-model cycles a workload consumed, how quantisation error
accumulates per NN layer. Everything is off by default and costs one
``None`` check per batch-level call until :func:`enable` installs a
:class:`Collector` (or one is injected via the ``collector=`` parameters
on :class:`~repro.nacu.unit.Nacu` / :class:`~repro.engine.BatchEngine`).

>>> from repro import telemetry
>>> from repro.engine import BatchEngine
>>> with telemetry.use_collector(telemetry.Collector()) as tel:
...     BatchEngine.for_bits(16).softmax([[1.0, 2.0, 0.5]])
...     snapshot = tel.snapshot()      # doctest: +SKIP
"""

from repro.telemetry.collector import (
    Collector,
    disable,
    enable,
    get_collector,
    merge_snapshots,
    resolve,
    set_collector,
    use_collector,
)
from repro.telemetry.nn_probe import probe_layer_error
from repro.telemetry.report import derived_rates, render_snapshot, render_table

__all__ = [
    "Collector",
    "disable",
    "enable",
    "get_collector",
    "merge_snapshots",
    "probe_layer_error",
    "derived_rates",
    "render_snapshot",
    "render_table",
    "resolve",
    "set_collector",
    "use_collector",
]
