"""The telemetry collector: counters, histograms, timers, cycle ledgers.

One :class:`Collector` holds every metric the instrumented datapath can
emit.  Telemetry is *opt-in*: the module-level registry holds ``None``
until :func:`enable` (or :func:`set_collector`) installs a collector, and
every instrumentation site guards on that single reference **once per
batch call** — with telemetry off, the hot paths pay one module-attribute
load and a ``None`` check, nothing else.

Two ways to wire a collector in:

* the module registry — ``telemetry.enable()`` instruments everything
  that runs afterwards (the serving configuration);
* the ``collector=`` injection point on :class:`~repro.nacu.unit.Nacu`,
  :class:`~repro.engine.BatchEngine` and the datapath components — a
  private collector for one unit, so tests stay deterministic even when
  other code shares the process.

The collector never imports the rest of :mod:`repro` (the fixed-point
substrate instruments *it*), so it can be loaded from the innermost
arithmetic helpers without cycles.
"""

from __future__ import annotations

import json
import math
import time
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.telemetry.quantiles import StreamingQuantiles, merge_quantile_entries

__all__ = [
    "Collector",
    "enable",
    "disable",
    "get_collector",
    "set_collector",
    "resolve",
    "use_collector",
]


class _Span:
    """A nanosecond span timer (``with collector.span(name): ...``)."""

    __slots__ = ("_collector", "_name", "_start")

    def __init__(self, collector: "Collector", name: str):
        self._collector = collector
        self._name = name

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._collector.observe_span(
            self._name, time.perf_counter_ns() - self._start
        )


class Collector:
    """An in-memory metric sink with a JSON-able snapshot.

    Metric families:

    * **counters** — monotonically increasing integers (:meth:`count`);
    * **histograms** — integer-valued distributions stored sparsely as
      ``{value: occurrences}`` (:meth:`observe`);
    * **timers** — span wall-clock accumulators in nanoseconds
      (:meth:`span` / :meth:`observe_span`);
    * **cycles** — the paper's cycle model per function mode, with the
      equivalent "hardware" nanoseconds when a clock period is known
      (:meth:`add_cycles`);
    * **errors** — running per-layer fixed-point-vs-float error stats
      (:meth:`record_error`);
    * **quantiles** — streaming latency distributions over fixed
      log-spaced buckets (:meth:`observe_latency`), whose p50/p99/p999
      merge *exactly* across shard snapshots (:mod:`.quantiles`).
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Dict[int, int]] = {}
        self.timers: Dict[str, Dict[str, int]] = {}
        self.cycles: Dict[str, int] = {}
        self.hw_ns: Dict[str, float] = {}
        self.errors: Dict[str, Dict[str, float]] = {}
        self.quantiles: Dict[str, StreamingQuantiles] = {}
        #: Latency and span arrays accepted but not yet folded —
        #: :meth:`observe_latency_many` / :meth:`observe_span_many` are
        #: O(1) per batch and the folds run once per snapshot (bucket
        #: counts and timer totals are commutative integer sums, so the
        #: deferred fold is byte-identical to an eager one).
        self._pending_latencies: Dict[str, list] = {}
        self._pending_spans: Dict[str, list] = {}

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + int(n)

    # ------------------------------------------------------------------
    # Histograms
    # ------------------------------------------------------------------
    def observe(self, name: str, values) -> None:
        """Fold integer ``values`` (scalar or array) into histogram ``name``."""
        hist = self.histograms.setdefault(name, {})
        values = np.asarray(values)
        if values.ndim == 0:
            key = int(values)
            hist[key] = hist.get(key, 0) + 1
            return
        uniques, counts = np.unique(values, return_counts=True)
        for value, occurrences in zip(uniques.tolist(), counts.tolist()):
            key = int(value)
            hist[key] = hist.get(key, 0) + int(occurrences)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def span(self, name: str) -> _Span:
        """A context manager timing one span with ``perf_counter_ns``."""
        return _Span(self, name)

    def observe_span(self, name: str, elapsed_ns: int) -> None:
        """Record one finished span of ``elapsed_ns`` nanoseconds."""
        timer = self.timers.setdefault(name, {"count": 0, "total_ns": 0})
        timer["count"] += 1
        timer["total_ns"] += int(elapsed_ns)

    def observe_span_many(self, name: str, elapsed_ns) -> None:
        """Accept an array of finished spans; the sum is deferred.

        Identical totals to calling :meth:`observe_span` per element —
        the batcher hands over a whole batch's queue waits in one list
        append (the array is captured as-is, so pass one you will not
        mutate) and the reduction runs at the next :meth:`snapshot`.
        """
        self._pending_spans.setdefault(name, []).append(elapsed_ns)

    # ------------------------------------------------------------------
    # Streaming quantiles (fixed log-spaced buckets; exact shard merge)
    # ------------------------------------------------------------------
    def observe_latency(self, name: str, value_ns) -> None:
        """Fold one non-negative integer (nanoseconds by convention) into
        the streaming distribution ``name``."""
        dist = self.quantiles.get(name)
        if dist is None:
            dist = self.quantiles.setdefault(name, StreamingQuantiles())
        dist.observe(value_ns)

    def observe_latency_many(self, name: str, values_ns) -> None:
        """Accept an array of observations; the bucket fold is deferred.

        The serving hot path pays one list append per batch (the array
        is captured as-is, so pass one you will not mutate); the actual
        vectorised fold happens at :meth:`snapshot`, where one pass over
        the accumulated arrays lands on exactly the state eager folding
        would have produced — bucket folds are commutative integer
        sums, so interleaved scalar observes cannot change the result.
        """
        values = np.asarray(values_ns, dtype=np.int64).reshape(-1)
        if values.size == 0:
            return
        self._pending_latencies.setdefault(name, []).append(values)

    def _flush_pending(self) -> None:
        """Fold every deferred latency and span array into its sink."""
        if self._pending_latencies:
            pending, self._pending_latencies = self._pending_latencies, {}
            for name, chunks in pending.items():
                dist = self.quantiles.get(name)
                if dist is None:
                    dist = self.quantiles.setdefault(
                        name, StreamingQuantiles()
                    )
                dist.observe_many(
                    np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
                )
        if self._pending_spans:
            pending_spans, self._pending_spans = self._pending_spans, {}
            for name, chunks in pending_spans.items():
                values = np.concatenate(
                    [np.asarray(c, dtype=np.int64).reshape(-1)
                     for c in chunks]
                )
                if values.size == 0:
                    continue
                timer = self.timers.setdefault(
                    name, {"count": 0, "total_ns": 0}
                )
                timer["count"] += int(values.size)
                timer["total_ns"] += int(values.sum(dtype=np.int64))

    # ------------------------------------------------------------------
    # Paper-model cycle ledger
    # ------------------------------------------------------------------
    def add_cycles(self, mode: str, cycles: int,
                   clock_ns: Optional[float] = None) -> None:
        """Charge ``cycles`` of the paper's cycle model to ``mode``.

        With ``clock_ns`` the equivalent hardware time accumulates too,
        so one snapshot reports wall-clock *and* modelled-silicon time.
        """
        self.cycles[mode] = self.cycles.get(mode, 0) + int(cycles)
        if clock_ns is not None:
            self.hw_ns[mode] = self.hw_ns.get(mode, 0.0) + cycles * clock_ns

    # ------------------------------------------------------------------
    # Per-layer error tracking
    # ------------------------------------------------------------------
    def record_error(self, name: str, values, reference) -> None:
        """Fold ``values - reference`` into the error stats for ``name``.

        Keeps the running element count, sum of squared errors and max
        absolute error, so the snapshot can report RMSE/max per layer
        whatever the number of forward passes.
        """
        diff = np.asarray(values, dtype=np.float64) - np.asarray(
            reference, dtype=np.float64
        )
        entry = self.errors.setdefault(
            name, {"n": 0, "sum_sq": 0.0, "max_abs": 0.0}
        )
        entry["n"] += diff.size
        entry["sum_sq"] += float(np.sum(diff * diff))
        entry["max_abs"] = max(entry["max_abs"], float(np.max(np.abs(diff))))

    # ------------------------------------------------------------------
    # Export / lifecycle
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Everything collected so far, as plain JSON-able types."""
        self._flush_pending()
        return {
            "counters": dict(self.counters),
            "histograms": {
                name: {str(k): v for k, v in sorted(hist.items())}
                for name, hist in self.histograms.items()
            },
            "timers": {name: dict(t) for name, t in self.timers.items()},
            "cycles": dict(self.cycles),
            "hw_ns": dict(self.hw_ns),
            "errors": {
                name: {
                    "n": entry["n"],
                    "rmse": math.sqrt(entry["sum_sq"] / entry["n"])
                    if entry["n"]
                    else 0.0,
                    "max_abs": entry["max_abs"],
                }
                for name, entry in self.errors.items()
            },
            "quantiles": {
                name: dist.snapshot() for name, dist in self.quantiles.items()
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The snapshot, serialised."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Drop every metric (the collector stays installed)."""
        self.counters.clear()
        self.histograms.clear()
        self.timers.clear()
        self.cycles.clear()
        self.hw_ns.clear()
        self.errors.clear()
        self.quantiles.clear()
        self._pending_latencies.clear()
        self._pending_spans.clear()

    def __repr__(self) -> str:
        return (
            f"<Collector {len(self.counters)} counters, "
            f"{len(self.histograms)} histograms, {len(self.timers)} timers>"
        )


# ----------------------------------------------------------------------
# Module-level registry
# ----------------------------------------------------------------------
#: The active collector, or None when telemetry is off. Instrumentation
#: sites read this once per batch-level call.
_active: Optional[Collector] = None


def get_collector() -> Optional[Collector]:
    """The registered collector, or ``None`` when telemetry is off."""
    return _active


def set_collector(collector: Optional[Collector]) -> Optional[Collector]:
    """Install ``collector`` (or ``None`` to disable); returns the old one."""
    global _active
    previous = _active
    _active = collector
    return previous


def enable(collector: Optional[Collector] = None) -> Collector:
    """Turn telemetry on process-wide; returns the active collector."""
    global _active
    if collector is None:
        collector = _active if _active is not None else Collector()
    _active = collector
    return collector


def disable() -> Optional[Collector]:
    """Turn telemetry off; returns the collector that was active."""
    return set_collector(None)


def resolve(override: Optional[Collector] = None) -> Optional[Collector]:
    """The collector an instrumented component should emit to.

    An injected per-component collector wins; otherwise the module
    registry decides. Components call this once per batch-level
    operation — the whole cost of disabled telemetry.
    """
    return override if override is not None else _active


class use_collector:
    """``with use_collector(c):`` — scoped registry install, for tests."""

    def __init__(self, collector: Optional[Collector]):
        self._collector = collector
        self._previous: Optional[Collector] = None

    def __enter__(self) -> Optional[Collector]:
        self._previous = set_collector(self._collector)
        return self._collector

    def __exit__(self, exc_type, exc, tb) -> None:
        set_collector(self._previous)


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Combine snapshot dicts (sum counters/histograms/timers/cycles).

    Error stats merge by element count: RMSEs recombine through the sum
    of squares, max-abs takes the max — the same totals one collector
    would have produced had it seen all the traffic. Quantile entries
    merge by summed bucket counts (:func:`.quantiles.merge_quantile_entries`),
    so percentiles from the merge are byte-identical to the serial run's.
    """
    merged: dict = {
        "counters": {},
        "histograms": {},
        "timers": {},
        "cycles": {},
        "hw_ns": {},
        "errors": {},
        "quantiles": {},
    }
    quantile_shards: Dict[str, List[dict]] = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, hist in snap.get("histograms", {}).items():
            out = merged["histograms"].setdefault(name, {})
            for bucket, occurrences in hist.items():
                out[bucket] = out.get(bucket, 0) + occurrences
        for name, timer in snap.get("timers", {}).items():
            out = merged["timers"].setdefault(name, {"count": 0, "total_ns": 0})
            out["count"] += timer.get("count", 0)
            out["total_ns"] += timer.get("total_ns", 0)
        for name, cycles in snap.get("cycles", {}).items():
            merged["cycles"][name] = merged["cycles"].get(name, 0) + cycles
        for name, ns in snap.get("hw_ns", {}).items():
            merged["hw_ns"][name] = merged["hw_ns"].get(name, 0.0) + ns
        for name, entry in snap.get("errors", {}).items():
            out = merged["errors"].setdefault(
                name, {"n": 0, "sum_sq": 0.0, "max_abs": 0.0}
            )
            n = entry.get("n", 0)
            out["n"] += n
            out["sum_sq"] += entry.get("rmse", 0.0) ** 2 * n
            out["max_abs"] = max(out["max_abs"], entry.get("max_abs", 0.0))
        for name, entry in snap.get("quantiles", {}).items():
            quantile_shards.setdefault(name, []).append(entry)
    merged["quantiles"] = {
        name: merge_quantile_entries(entries)
        for name, entries in quantile_shards.items()
    }
    merged["errors"] = {
        name: {
            "n": entry["n"],
            "rmse": math.sqrt(entry["sum_sq"] / entry["n"]) if entry["n"] else 0.0,
            "max_abs": entry["max_abs"],
        }
        for name, entry in merged["errors"].items()
    }
    return merged
