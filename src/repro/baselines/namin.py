"""[8] Namin et al., ISCAS 2009 — hybrid PWL + RALUT tanh at 10 bits.

A coarse PWL gives the first approximation and a RALUT holds the residual
correction, refining the curve where the line is worst.
"""

from __future__ import annotations

import math

import numpy as np

from repro.approx.lut import quantise_output
from repro.approx.pwl import UniformPWL
from repro.approx.ralut import RangeAddressableLUT
from repro.baselines.base import register_baseline
from repro.baselines.symmetric import SymmetricHalfRangeModel
from repro.fixedpoint import QFormat
from repro.funcs import tanh


class NaminHybridTanh(SymmetricHalfRangeModel):
    """4-segment coarse PWL plus a 32-entry residual RALUT."""

    name = "Namin PWL+RALUT [8]"
    function = "tanh"
    info_key = "namin"

    OUT_FMT = QFormat(0, 8, signed=False)
    #: Residual corrections are small: give them a fine signed format.
    CORRECTION_FMT = QFormat(0, 9)
    word_bits = 10 + 10

    def __init__(self, pwl_segments: int = 4, ralut_entries: int = 32):
        super().__init__(self.OUT_FMT)
        self.sat_edge = math.atanh(1.0 - self.OUT_FMT.resolution / 2.0)
        self.pwl = UniformPWL(tanh, 0.0, self.sat_edge, pwl_segments)

        def residual(x):
            return tanh(x) - self.pwl.table.eval(x)

        self.correction = RangeAddressableLUT.for_entries(
            residual, 0.0, self.sat_edge, ralut_entries, out_fmt=self.CORRECTION_FMT
        )

    @property
    def n_entries(self) -> int:
        return self.pwl.n_entries + self.correction.n_entries

    def _eval_positive(self, magnitude: np.ndarray) -> np.ndarray:
        corrected = self.pwl.table.eval(magnitude) + self.correction.eval(magnitude)
        return np.where(
            magnitude >= self.sat_edge, self.OUT_FMT.max_value, corrected
        )


register_baseline("namin", NaminHybridTanh)
