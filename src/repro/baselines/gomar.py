"""[11] Gomar et al. ACSSC 2017 and [12] Gomar et al. TCAS 2014.

[12] implements a multiplierless ``e^x`` by a change of base:
``e^x = 2^z`` with ``z = x * log2(e)``; the integer part of ``z`` becomes
a bit shift, and ``2^f`` for the fractional part is approximated by the
straight line ``1 + f``.

[11] builds the sigmoid *from* that exponential (the inverse of NACU's
direction): ``sigma(x) = e^x / (1 + e^x)`` for the negative range, and
tanh through Eq. 3 — which is why it "would need division in all layers"
(Section VII.A). Published accuracy: sigma RMSE 9.1e-3 (corr 0.998),
tanh RMSE 1.77e-2 (corr 0.999), which these models land on.
"""

from __future__ import annotations

import math

import numpy as np

from repro.approx.lut import quantise_output
from repro.baselines.base import BaselineApproximator, register_baseline
from repro.baselines.symmetric import SymmetricHalfRangeModel
from repro.errors import RangeError
from repro.fixedpoint import QFormat
from repro.fixedpoint.rounding import Rounding, shift_right_round

#: Working resolution of the [11]/[12] datapaths (they report 6-14 bits;
#: 12 fractional bits is the headline configuration).
_FRAC_BITS = 12
_LOG2E_RAW = round(math.log2(math.e) * (1 << _FRAC_BITS))


def _base2_exp_raw(x_raw: np.ndarray, frac_bits: int) -> np.ndarray:
    """[12]'s datapath on raw integers: ``(1 + f) >> -k`` for x <= 0.

    ``z = x*log2(e)`` is formed by one constant multiplication (the only
    multiplier-ish element; [12] further decomposes it into shifts), its
    integer part drives an arithmetic shifter and its fractional part
    feeds the ``1 + f`` line. Returns the e^x raw with ``frac_bits``
    fractional bits.
    """
    z_raw = shift_right_round(
        x_raw.astype(np.int64) * _LOG2E_RAW, _FRAC_BITS, Rounding.FLOOR
    )
    k = z_raw >> frac_bits  # floor: negative or zero integer part
    f_raw = z_raw - (k << frac_bits)  # fractional part in [0, 1)
    one_plus_f = (np.int64(1) << frac_bits) + f_raw
    shift = np.minimum(-k, 62).astype(np.int64)  # k <= 0 on this domain
    return one_plus_f >> shift


class GomarBase2Exp(BaselineApproximator):
    """[12]'s multiplierless exponential for ``x <= 0``."""

    name = "Gomar base-2 exp [12]"
    function = "exp"
    info_key = "gomar_exp"
    word_bits = _FRAC_BITS

    def __init__(self, frac_bits: int = _FRAC_BITS):
        self.frac_bits = frac_bits
        self.in_fmt = QFormat(4, frac_bits)

    @property
    def n_entries(self) -> int:
        return 0  # no tables at all — the design's selling point

    def eval(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if np.any(x > 0):
            raise RangeError("[12] model implemented for the x <= 0 domain")
        x_raw = np.round(x * (1 << self.frac_bits)).astype(np.int64)
        e_raw = _base2_exp_raw(np.atleast_1d(x_raw).ravel(), self.frac_bits)
        return (e_raw.astype(np.float64) / (1 << self.frac_bits)).reshape(x.shape)


class GomarExpBasedSigmoid(SymmetricHalfRangeModel):
    """[11]: sigma from the [12] exponential plus one division."""

    name = "Gomar exp-based sigmoid [11]"
    function = "sigmoid"
    info_key = "gomar_sigmoid"
    word_bits = _FRAC_BITS

    def __init__(self, frac_bits: int = _FRAC_BITS):
        super().__init__(QFormat(0, frac_bits, signed=False))
        self.frac_bits = frac_bits

    @property
    def n_entries(self) -> int:
        return 0

    def _eval_positive(self, magnitude: np.ndarray) -> np.ndarray:
        # sigma(u) = 1 - sigma(-u) = 1 - e^-u / (1 + e^-u) for u >= 0.
        x_raw = -np.round(magnitude * (1 << self.frac_bits)).astype(np.int64)
        e_raw = _base2_exp_raw(x_raw, self.frac_bits)
        one = np.int64(1) << self.frac_bits
        # Fixed-point division with frac_bits quotient fraction bits.
        sigma_neg = (e_raw << self.frac_bits) // (one + e_raw)
        return 1.0 - sigma_neg.astype(np.float64) / (1 << self.frac_bits)


class GomarExpBasedTanh(SymmetricHalfRangeModel):
    """[11]: tanh via Eq. 3 on the exp-based sigma."""

    name = "Gomar exp-based tanh [11]"
    function = "tanh"
    info_key = "gomar_sigmoid"
    word_bits = _FRAC_BITS

    def __init__(self, frac_bits: int = _FRAC_BITS):
        super().__init__(QFormat(0, frac_bits, signed=False))
        self.frac_bits = frac_bits
        self._sigma = GomarExpBasedSigmoid(frac_bits)

    @property
    def n_entries(self) -> int:
        return 0

    def _eval_positive(self, magnitude: np.ndarray) -> np.ndarray:
        sigma = self._sigma._eval_positive(2.0 * magnitude)
        doubled = 2.0 * quantise_output(sigma, self._sigma.out_fmt) - 1.0
        return doubled


register_baseline("gomar_exp", GomarBase2Exp)
register_baseline("gomar_sigmoid", GomarExpBasedSigmoid)
register_baseline("gomar_tanh", GomarExpBasedTanh)
