"""Related-work baselines (Table I / Section VI).

Each module models one published design's *algorithm* bit-accurately at
its published operand widths, so the Fig. 6 accuracy comparisons can be
regenerated. Published implementation costs (area, node, clock, latency)
are carried as metadata in :data:`RELATED_WORK` for the Table I bench.
"""

from repro.baselines.base import (
    RELATED_WORK,
    BaselineApproximator,
    RelatedWorkInfo,
    get_baseline,
    iter_baselines,
)
from repro.baselines.tsmots import TsmotsNupwlSigmoid, TsmotsTaylor2Sigmoid
from repro.baselines.finker import FinkerPwlSigmoid, FinkerTaylor2Sigmoid
from repro.baselines.gomar import (
    GomarBase2Exp,
    GomarExpBasedSigmoid,
    GomarExpBasedTanh,
)
from repro.baselines.zamanlooy import ZamanlooyRalutTanh
from repro.baselines.leboeuf import LeboeufRalutTanh
from repro.baselines.namin import NaminHybridTanh
from repro.baselines.nambiar import NambiarParabolicSigmoid
from repro.baselines.basterretxea import BasterretxeaRecursiveSigmoid
from repro.baselines.nilsson import NilssonTaylor6Exp
from repro.baselines.cordic import CordicExp
from repro.baselines.parabolic import ParabolicSynthesisExp

__all__ = [
    "BasterretxeaRecursiveSigmoid",
    "BaselineApproximator",
    "CordicExp",
    "FinkerPwlSigmoid",
    "FinkerTaylor2Sigmoid",
    "GomarBase2Exp",
    "GomarExpBasedSigmoid",
    "GomarExpBasedTanh",
    "LeboeufRalutTanh",
    "NambiarParabolicSigmoid",
    "NaminHybridTanh",
    "NilssonTaylor6Exp",
    "ParabolicSynthesisExp",
    "RELATED_WORK",
    "RelatedWorkInfo",
    "TsmotsNupwlSigmoid",
    "TsmotsTaylor2Sigmoid",
    "ZamanlooyRalutTanh",
    "get_baseline",
    "iter_baselines",
]
