"""[14] Pouyan et al., ECCTD 2011 — parabolic-synthesis exponential.

Parabolic synthesis factorises the target as a product of second-order
"sub-functions": ``f(u) ~ s1(u) * s2(u)``, each factor a parabola cheap
to evaluate in hardware. Since every real quartic splits into two real
quadratics, the best two-factor synthesis is found here by fitting a
4th-order least-squares polynomial and factoring it over its conjugate
root pairs. The six coefficients are quantised to the published 18-bit
width and the product is evaluated through fixed-point Horner steps.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.approx.lut import quantise_output
from repro.approx.polynomial import (
    PolynomialApproximator,
    least_squares_coefficients,
)
from repro.baselines.base import BaselineApproximator, register_baseline
from repro.errors import ConvergenceError
from repro.fixedpoint import QFormat


def factor_quartic(coeffs: List[float]) -> Tuple[List[float], List[float]]:
    """Split a real quartic into two real quadratic factors.

    Roots are paired conjugate-with-conjugate (complex) or real-with-real,
    and the leading coefficient is divided evenly between the factors.
    Coefficients are lowest-order first.
    """
    if len(coeffs) != 5 or coeffs[-1] == 0.0:
        raise ConvergenceError("parabolic synthesis expects a true quartic")
    roots = np.polynomial.polynomial.polyroots(coeffs)
    complex_roots = sorted(
        (r for r in roots if abs(r.imag) > 1e-9), key=lambda r: (r.real, r.imag)
    )
    real_roots = sorted(float(r.real) for r in roots if abs(r.imag) <= 1e-9)
    pairs = []
    for i in range(0, len(complex_roots), 2):
        pairs.append((complex_roots[i], complex_roots[i + 1]))
    for i in range(0, len(real_roots), 2):
        pairs.append((real_roots[i], real_roots[i + 1]))
    if len(pairs) != 2:
        raise ConvergenceError("quartic roots did not pair into quadratics")
    lead = float(coeffs[-1])
    scale = np.sign(lead) * np.sqrt(abs(lead))
    factors = []
    for r1, r2 in pairs:
        # (x - r1)(x - r2) = x^2 - (r1+r2) x + r1 r2, scaled by the split lead
        b = float(np.real(r1 + r2))
        c = float(np.real(r1 * r2))
        factors.append([scale * c, -scale * b, scale])
    return factors[0], factors[1]


class ParabolicSynthesisExp(BaselineApproximator):
    """Two-factor parabolic synthesis of e^x on [-1, 0] at 18 bits."""

    name = "Parabolic synthesis [14]"
    function = "exp"
    info_key = "parabolic"
    word_bits = 18 * 3

    #: 18-bit coefficient words; three integer bits cover the factored
    #: quadratics' constant terms.
    COEFF_FMT = QFormat(3, 14)
    WORK_FMT = QFormat(3, 14)

    def __init__(self, x_lo: float = -1.0, x_hi: float = 0.0):
        self.x_lo, self.x_hi = x_lo, x_hi
        quartic = least_squares_coefficients(np.exp, x_lo, x_hi, order=4)
        c1, c2 = factor_quartic(quartic)
        self.s1 = PolynomialApproximator(c1, self.COEFF_FMT, self.WORK_FMT)
        self.s2 = PolynomialApproximator(c2, self.COEFF_FMT, self.WORK_FMT)
        self.out_fmt = QFormat(1, 16)

    @property
    def n_entries(self) -> int:
        return self.s1.n_entries + self.s2.n_entries

    def eval(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        product = self.s1.eval(x) * self.s2.eval(x)
        return quantise_output(product, self.out_fmt)


register_baseline("parabolic", ParabolicSynthesisExp)
