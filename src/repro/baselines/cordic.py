"""[14]/[15] — hyperbolic CORDIC exponential.

Rotation-mode hyperbolic CORDIC drives the angle register ``z`` to zero
while accumulating ``cosh``/``sinh`` in ``x``/``y``; ``e^t = x + y``.
Iterations 4 and 13 are executed twice, as the hyperbolic convergence
proof requires. The model works on raw integers with arithmetic shifts,
exactly like the sequential hardware ([14]: 21 bits, 86 ns at 65 nm).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.baselines.base import BaselineApproximator, register_baseline
from repro.errors import RangeError

#: Hyperbolic CORDIC repeats these iteration indices for convergence.
_REPEATED = (4, 13, 40)


def iteration_sequence(n_iterations: int) -> List[int]:
    """Shift amounts i = 1, 2, 3, 4, 4, 5, ..., 13, 13, ... up to a count."""
    sequence = []
    i = 1
    while len(sequence) < n_iterations:
        sequence.append(i)
        if i in _REPEATED and len(sequence) < n_iterations:
            sequence.append(i)
        i += 1
    return sequence


def hyperbolic_gain(sequence: List[int]) -> float:
    """``K_h = prod sqrt(1 - 2^-2i)`` over the executed iterations."""
    gain = 1.0
    for i in sequence:
        gain *= math.sqrt(1.0 - 2.0 ** (-2 * i))
    return gain


class CordicExp(BaselineApproximator):
    """Sequential hyperbolic CORDIC e^t for |t| within convergence (~1.118)."""

    name = "CORDIC exp [14]"
    function = "exp"
    info_key = "cordic"

    #: Maximum rotation angle the hyperbolic sequence can absorb.
    MAX_INPUT = 1.1182

    def __init__(self, n_bits: int = 21, n_iterations: int = None):
        self.frac_bits = n_bits - 3  # sign + 2 integer bits
        self.n_bits = n_bits
        self.word_bits = n_bits
        if n_iterations is None:
            n_iterations = self.frac_bits + 2
        self.sequence = iteration_sequence(n_iterations)
        self.atanh_raw = [
            round(math.atanh(2.0 ** -i) * (1 << self.frac_bits))
            for i in self.sequence
        ]
        self.k_inv_raw = round(
            (1 << self.frac_bits) / hyperbolic_gain(self.sequence)
        )

    @property
    def n_entries(self) -> int:
        return len(self.sequence)  # the atanh constant table

    def eval(self, t) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        if np.any(np.abs(t) > self.MAX_INPUT):
            raise RangeError(
                f"hyperbolic CORDIC converges only for |t| <= {self.MAX_INPUT}"
            )
        shape = t.shape
        z = np.round(np.atleast_1d(t).ravel() * (1 << self.frac_bits)).astype(np.int64)
        x = np.full_like(z, self.k_inv_raw)
        y = np.zeros_like(z)
        for i, angle in zip(self.sequence, self.atanh_raw):
            d = np.where(z >= 0, 1, -1).astype(np.int64)
            x_shift = x >> i
            y_shift = y >> i
            x, y = x + d * y_shift, y + d * x_shift
            z = z - d * angle
        e_raw = x + y
        return (e_raw.astype(np.float64) / (1 << self.frac_bits)).reshape(shape)


register_baseline("cordic", CordicExp)
