"""Shared interface and Table I metadata for the related-work baselines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.approx.base import Approximator
from repro.errors import ConfigError
from repro.telemetry import use_collector


@dataclass(frozen=True)
class RelatedWorkInfo:
    """One column of Table I, as published (not scaled to 28 nm)."""

    key: str
    reference: str  # bracketed citation in the paper
    implementation: str  # the paper's "Implem." row
    functions: Tuple[str, ...]
    n_bits: str  # as printed: some designs have asymmetric widths
    tech_node_nm: Optional[float]
    area_um2: Optional[float]
    lut_entries: Optional[int]
    clock_period_ns: Optional[float]
    latency_cycles: Optional[int]
    #: Whether the design appears as a Table I column (some Section VI
    #: works are discussed in the text only).
    in_table1: bool = True


class BaselineApproximator(Approximator):
    """An :class:`Approximator` carrying its related-work metadata."""

    #: Which function the instance approximates ("sigmoid"/"tanh"/"exp").
    function: str = ""
    #: Table I metadata key.
    info_key: str = ""

    @property
    def info(self) -> RelatedWorkInfo:
        """The Table I column this model reproduces."""
        return RELATED_WORK[self.info_key]


#: Table I, transcribed. ``None`` marks "Not reported"/"Not applicable".
RELATED_WORK: Dict[str, RelatedWorkInfo] = {
    info.key: info
    for info in [
        RelatedWorkInfo(
            key="tsmots_nupwl",
            reference="[6]",
            implementation="NUPWL",
            functions=("sigmoid",),
            n_bits="16",
            tech_node_nm=65.0,
            area_um2=None,  # FPGA: logic elements only
            lut_entries=7,
            clock_period_ns=10.0,
            latency_cycles=2,
        ),
        RelatedWorkInfo(
            key="tsmots_taylor2",
            reference="[6]",
            implementation="2nd order Taylor",
            functions=("sigmoid",),
            n_bits="16",
            tech_node_nm=65.0,
            area_um2=None,
            lut_entries=4,
            clock_period_ns=10.0,
            latency_cycles=2,
        ),
        RelatedWorkInfo(
            key="finker_pwl",
            reference="[10]",
            implementation="1st order Taylor",
            functions=("sigmoid",),
            n_bits="16",
            tech_node_nm=40.0,
            area_um2=None,
            lut_entries=102,
            clock_period_ns=2.677,
            latency_cycles=4,
        ),
        RelatedWorkInfo(
            key="finker_taylor2",
            reference="[10]",
            implementation="2nd order Taylor",
            functions=("sigmoid",),
            n_bits="16",
            tech_node_nm=40.0,
            area_um2=None,
            lut_entries=28,
            clock_period_ns=2.677,
            latency_cycles=7,
        ),
        RelatedWorkInfo(
            key="gomar_sigmoid",
            reference="[11]",
            implementation="Based on e^x",
            functions=("sigmoid", "tanh"),
            n_bits="6 to 14",
            tech_node_nm=90.0,
            area_um2=None,
            lut_entries=None,
            clock_period_ns=2.605,
            latency_cycles=4,
        ),
        RelatedWorkInfo(
            key="gomar_exp",
            reference="[12]",
            implementation="Base-2 multiplierless",
            functions=("exp",),
            n_bits="12",
            tech_node_nm=None,
            area_um2=None,
            lut_entries=None,
            clock_period_ns=None,
            latency_cycles=None,
        ),
        RelatedWorkInfo(
            key="zamanlooy",
            reference="[4]",
            implementation="RALUT",
            functions=("tanh",),
            n_bits="9 in, 6 out",
            tech_node_nm=180.0,
            area_um2=1280.66,
            lut_entries=14,
            clock_period_ns=2.12,
            latency_cycles=1,
        ),
        RelatedWorkInfo(
            key="leboeuf",
            reference="[5]",
            implementation="RALUT",
            functions=("tanh",),
            n_bits="10",
            tech_node_nm=180.0,
            area_um2=11871.53,
            lut_entries=127,
            clock_period_ns=2.12,
            latency_cycles=1,
        ),
        RelatedWorkInfo(
            key="namin",
            reference="[8]",
            implementation="PWL & RALUT",
            functions=("tanh",),
            n_bits="10",
            tech_node_nm=180.0,
            area_um2=5130.78,
            lut_entries=None,
            clock_period_ns=2.8,
            latency_cycles=1,
        ),
        RelatedWorkInfo(
            key="basterretxea",
            reference="[7]",
            implementation="Recursive PWL",
            functions=("sigmoid",),
            n_bits="16",
            tech_node_nm=None,
            area_um2=None,
            lut_entries=None,
            clock_period_ns=None,
            latency_cycles=None,
        ),
        RelatedWorkInfo(
            key="nilsson",
            reference="[13]",
            implementation="6th order Taylor",
            functions=("exp",),
            n_bits="18",
            tech_node_nm=65.0,
            area_um2=20700.0,
            lut_entries=None,
            clock_period_ns=40.3,
            latency_cycles=1,
        ),
        RelatedWorkInfo(
            key="cordic",
            reference="[14]",
            implementation="CORDIC",
            functions=("exp",),
            n_bits="21",
            tech_node_nm=65.0,
            area_um2=19150.0,
            lut_entries=None,
            clock_period_ns=86.0,
            latency_cycles=1,
        ),
        RelatedWorkInfo(
            key="parabolic",
            reference="[14]",
            implementation="Parabolic",
            functions=("exp",),
            n_bits="18",
            tech_node_nm=65.0,
            area_um2=26400.0,
            lut_entries=None,
            clock_period_ns=20.8,
            latency_cycles=1,
        ),
        RelatedWorkInfo(
            key="nambiar",
            reference="[9]",
            implementation="Parabolic sigmoid-like",
            functions=("sigmoid",),
            n_bits="16",
            tech_node_nm=None,
            area_um2=None,
            lut_entries=2,
            clock_period_ns=None,
            latency_cycles=None,
            in_table1=False,
        ),
        RelatedWorkInfo(
            key="nacu",
            reference="this work",
            implementation="PWL",
            functions=("sigmoid", "tanh", "exp", "softmax"),
            n_bits="16",
            tech_node_nm=28.0,
            area_um2=9671.0,
            lut_entries=53,
            clock_period_ns=3.75,
            latency_cycles=3,
        ),
    ]
}

#: Filled by each baseline module at import time: key -> zero-arg factory.
_FACTORIES: Dict[str, Callable[[], BaselineApproximator]] = {}
#: Default instances are immutable evaluation models, so they are built
#: once and shared (some constructions run seconds of table optimisation).
_INSTANCES: Dict[str, BaselineApproximator] = {}


def register_baseline(name: str, factory: Callable[[], BaselineApproximator]) -> None:
    """Register a default-configured baseline instance factory."""
    _FACTORIES[name] = factory


def get_baseline(name: str) -> BaselineApproximator:
    """The shared default-configured instance of a registered baseline."""
    if name not in _FACTORIES:
        raise ConfigError(
            f"unknown baseline {name!r}; known: {sorted(_FACTORIES)}"
        )
    if name not in _INSTANCES:
        # Construction is per-process infrastructure (the instance is
        # cached and shared); run it telemetry-silent so its fixed-point
        # ops are not charged to whichever caller happens to arrive
        # first — shard telemetry must not depend on scheduling.
        with use_collector(None):
            _INSTANCES[name] = _FACTORIES[name]()
    return _INSTANCES[name]


def iter_baselines(function: Optional[str] = None) -> Iterator[BaselineApproximator]:
    """Yield the default instances, optionally filtered by target function.

    The filter consults the factory's ``function`` attribute *before*
    instantiating, so asking for one function's baselines never pays the
    (seconds-long) table construction of the others — this is what keeps
    per-function experiment shards balanced.
    """
    for name in sorted(_FACTORIES):
        factory = _FACTORIES[name]
        declared = getattr(factory, "function", None)
        if function is not None and declared is not None and declared != function:
            continue
        instance = get_baseline(name)
        if function is None or instance.function == function:
            yield instance
