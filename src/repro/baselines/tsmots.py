"""[6] Tsmots et al., CADSM 2019 — FPGA sigmoid approximations.

Two of the paper's three variants are modelled: the 7-interval NUPWL with
power-of-two slopes (shift-only multiplies) and the 4-interval 2nd-order
Taylor. Section VII.A: the NUPWL "avoids multipliers using power of two
shifts and for this reason has 10X worse max error compared to NACU"; the
Taylor variant "does not result in any accuracy improvement".
"""

from __future__ import annotations

import numpy as np

from repro.approx.minimax import fit_linear
from repro.approx.polynomial import least_squares_coefficients
from repro.approx.segments import Segment, SegmentTable
from repro.baselines.base import register_baseline
from repro.baselines.symmetric import SymmetricHalfRangeModel, snap_to_power_of_two
from repro.fixedpoint import QFormat
from repro.fixedpoint.rounding import quantize_float
from repro.funcs import sigmoid

#: 16-bit output with the sigmoid's [0, 1] range.
_OUT_FMT = QFormat(0, 15, signed=False)
_X_RANGE = 8.0


class TsmotsNupwlSigmoid(SymmetricHalfRangeModel):
    """7-interval NUPWL with power-of-two slopes."""

    name = "Tsmots NUPWL [6]"
    function = "sigmoid"
    info_key = "tsmots_nupwl"
    word_bits = 16

    #: Non-uniform breakpoints: dense near the knee, one wide saturation
    #: segment — the hand-optimised segmentation style of [6].
    BREAKPOINTS = (0.0, 0.5, 1.0, 1.5, 2.25, 3.0, 4.0, _X_RANGE)

    def __init__(self):
        super().__init__(_OUT_FMT)
        segments = []
        for lo, hi in zip(self.BREAKPOINTS[:-1], self.BREAKPOINTS[1:]):
            fit = fit_linear(sigmoid, lo, hi)
            slope = snap_to_power_of_two(fit.slope)
            # Re-centre the intercept for the snapped slope (still only an
            # adder), then quantise it to a 16-bit register.
            grid = np.linspace(lo, hi, 129)
            residual = sigmoid(grid) - slope * grid
            intercept = (float(np.min(residual)) + float(np.max(residual))) / 2.0
            intercept = float(quantize_float(intercept, _OUT_FMT)) * _OUT_FMT.resolution
            segments.append(Segment(lo, hi, slope, intercept))
        self.table = SegmentTable(segments)

    @property
    def n_entries(self) -> int:
        return len(self.table)

    def _eval_positive(self, magnitude: np.ndarray) -> np.ndarray:
        return self.table.eval(magnitude)


class TsmotsTaylor2Sigmoid(SymmetricHalfRangeModel):
    """4-interval 2nd-order polynomial (the paper's optimised variant)."""

    name = "Tsmots Taylor-2 [6]"
    function = "sigmoid"
    info_key = "tsmots_taylor2"
    word_bits = 48  # three 16-bit coefficients per entry

    BREAKPOINTS = (0.0, 1.0, 2.5, 4.5, _X_RANGE)
    _COEFF_FMT = QFormat(1, 14)

    def __init__(self):
        super().__init__(_OUT_FMT)
        self.coefficients = []
        self.edges = np.array(self.BREAKPOINTS)
        for lo, hi in zip(self.BREAKPOINTS[:-1], self.BREAKPOINTS[1:]):
            coeffs = least_squares_coefficients(sigmoid, lo, hi, order=2)
            quantised = [
                float(quantize_float(c, self._COEFF_FMT)) * self._COEFF_FMT.resolution
                for c in coeffs
            ]
            self.coefficients.append(quantised)

    @property
    def n_entries(self) -> int:
        return len(self.coefficients)

    def _eval_positive(self, magnitude: np.ndarray) -> np.ndarray:
        clamped = np.clip(magnitude, 0.0, _X_RANGE - 1e-12)
        idx = np.clip(
            np.searchsorted(self.edges, clamped, side="right") - 1,
            0,
            len(self.coefficients) - 1,
        )
        coeffs = np.array(self.coefficients)[idx]  # (n, 3)
        return coeffs[:, 0] + coeffs[:, 1] * clamped + coeffs[:, 2] * clamped ** 2


register_baseline("tsmots_nupwl", TsmotsNupwlSigmoid)
register_baseline("tsmots_taylor2", TsmotsTaylor2Sigmoid)
