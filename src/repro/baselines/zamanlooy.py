"""[4] Zamanlooy & Mirhassani, TVLSI 2014 — three-region RALUT tanh.

The input range is split into a *pass* region where ``tanh(x) ~ x``, an
*elaboration* region covered by a 14-entry RALUT, and a *saturation*
region where the output is the constant maximum. 9 input bits, 6 output
bits (Table I).
"""

from __future__ import annotations

import math

import numpy as np

from repro.approx.ralut import RangeAddressableLUT
from repro.baselines.base import register_baseline
from repro.baselines.symmetric import SymmetricHalfRangeModel
from repro.fixedpoint import QFormat
from repro.funcs import tanh


class ZamanlooyRalutTanh(SymmetricHalfRangeModel):
    """The hybrid pass/RALUT/saturation tanh at 9-in/6-out bits."""

    name = "Zamanlooy RALUT [4]"
    function = "tanh"
    info_key = "zamanlooy"

    #: 6 output bits: an unsigned 0.6 magnitude plus the mirrored sign.
    OUT_FMT = QFormat(0, 6, signed=False)
    word_bits = 6 + 9  # output word plus the range bound

    def __init__(self):
        super().__init__(self.OUT_FMT)
        lsb = self.OUT_FMT.resolution
        #: Pass region: tanh(x) - x < lsb/2 up to ~(3*lsb/2)^(1/3)... use
        #: the exact bound: max error of y=x at u is u - tanh(u).
        self.pass_edge = self._pass_region_edge(lsb / 2.0)
        #: Saturation region: 1 - tanh(u) < lsb/2 beyond atanh(1 - lsb/2).
        self.sat_edge = math.atanh(1.0 - lsb / 2.0)
        self.ralut = RangeAddressableLUT.for_entries(
            tanh, self.pass_edge, self.sat_edge, 14, out_fmt=self.OUT_FMT,
            monotone=True,
        )

    @staticmethod
    def _pass_region_edge(tolerance: float) -> float:
        """Largest u with ``u - tanh(u) <= tolerance`` (bisection)."""
        lo, hi = 0.0, 2.0
        for _ in range(60):
            mid = (lo + hi) / 2.0
            if mid - math.tanh(mid) <= tolerance:
                lo = mid
            else:
                hi = mid
        return lo

    @property
    def n_entries(self) -> int:
        return self.ralut.n_entries

    def _eval_positive(self, magnitude: np.ndarray) -> np.ndarray:
        ralut_out = self.ralut.eval(magnitude)
        return np.where(
            magnitude < self.pass_edge,
            magnitude,
            np.where(magnitude >= self.sat_edge, self.OUT_FMT.max_value, ralut_out),
        )


register_baseline("zamanlooy", ZamanlooyRalutTanh)
