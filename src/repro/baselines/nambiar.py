"""[9] Nambiar et al., Neurocomputing 2014 — parabolic sigmoid-like unit.

A cost-efficient "sigmoid-like" activation for evolvable block-based
NNs: one squaring plus shifts (all coefficients are powers of two), the
classic piecewise second-order approximation

    sigma(x) ~ 1 - 0.5 * (1 - x/4)^2   for 0 <= x < 4
    sigma(x) ~ 1                        for x >= 4

mirrored through Eq. 4 for the negative range. Discussed in the paper's
Section VI survey (not a Table I column).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import register_baseline
from repro.baselines.symmetric import SymmetricHalfRangeModel
from repro.fixedpoint import QFormat


class NambiarParabolicSigmoid(SymmetricHalfRangeModel):
    """The shift-and-square sigmoid-like activation."""

    name = "Nambiar parabolic [9]"
    function = "sigmoid"
    info_key = "nambiar"
    word_bits = 0  # coefficients are hard-wired shifts

    #: The knee where the parabola reaches 1 and the output saturates.
    KNEE = 4.0

    def __init__(self, out_fmt: QFormat = QFormat(0, 15, signed=False)):
        super().__init__(out_fmt)

    @property
    def n_entries(self) -> int:
        return 0

    def _eval_positive(self, magnitude: np.ndarray) -> np.ndarray:
        clamped = np.minimum(magnitude, self.KNEE)
        return 1.0 - 0.5 * (1.0 - clamped / self.KNEE) ** 2


register_baseline("nambiar", NambiarParabolicSigmoid)
