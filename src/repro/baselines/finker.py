"""[10] Finker et al., Electronics Letters 2013 — controlled-accuracy PWL.

Two variants from Table I: a 1st-order approximation with 102 segments
(Section VII.A: "10X better accuracy compared to NACU ... large number of
segments implies large LUTs") and a 2nd-order one with 28 segments and
comparable accuracy at higher latency (7 vs 4 cycles).
"""

from __future__ import annotations

import numpy as np

from repro.approx.pwl import UniformPWL
from repro.approx.polynomial import least_squares_coefficients
from repro.baselines.base import register_baseline
from repro.baselines.symmetric import SymmetricHalfRangeModel
from repro.fixedpoint import QFormat
from repro.fixedpoint.rounding import quantize_float
from repro.funcs import sigmoid

_X_RANGE = 8.0
_OUT_FMT = QFormat(0, 15, signed=False)
_COEFF_FMT = QFormat(1, 14)


class FinkerPwlSigmoid(SymmetricHalfRangeModel):
    """102-segment uniform 1st-order approximation at 16 bits.

    Each entry stores the segment's base value and a slope applied to the
    *local* offset ``x - x_lo`` — the segment-centred form that keeps the
    slope-quantisation error proportional to the segment width rather
    than to ``x``, which is what buys [10] its 10x accuracy over NACU's
    global ``m*x + q`` form.
    """

    name = "Finker PWL-102 [10]"
    function = "sigmoid"
    info_key = "finker_pwl"
    word_bits = 32

    def __init__(self, n_segments: int = 102):
        super().__init__(_OUT_FMT)
        self.edges = np.linspace(0.0, _X_RANGE, n_segments + 1)
        pwl = UniformPWL(sigmoid, 0.0, _X_RANGE, n_segments)
        slopes, bases = [], []
        for seg in pwl.table.segments:
            slope = float(quantize_float(seg.slope, _COEFF_FMT)) * _COEFF_FMT.resolution
            base = seg.slope * seg.x_lo + seg.intercept  # line value at x_lo
            base = float(quantize_float(base, _OUT_FMT)) * _OUT_FMT.resolution
            slopes.append(slope)
            bases.append(base)
        self.slopes = np.array(slopes)
        self.bases = np.array(bases)

    @property
    def n_entries(self) -> int:
        return len(self.slopes)

    def _eval_positive(self, magnitude: np.ndarray) -> np.ndarray:
        clamped = np.clip(magnitude, 0.0, _X_RANGE - 1e-12)
        idx = np.clip(
            np.searchsorted(self.edges, clamped, side="right") - 1,
            0,
            len(self.slopes) - 1,
        )
        offset = clamped - self.edges[idx]
        return self.bases[idx] + self.slopes[idx] * offset


class FinkerTaylor2Sigmoid(SymmetricHalfRangeModel):
    """28-segment uniform 2nd-order approximation at 16 bits."""

    name = "Finker Taylor2-28 [10]"
    function = "sigmoid"
    info_key = "finker_taylor2"
    word_bits = 48

    def __init__(self, n_segments: int = 28):
        super().__init__(_OUT_FMT)
        self.edges = np.linspace(0.0, _X_RANGE, n_segments + 1)
        self.coefficients = []
        for lo, hi in zip(self.edges[:-1], self.edges[1:]):
            # Segment-centred fit (coefficients of the local offset).
            coeffs = least_squares_coefficients(
                lambda u, lo=lo: sigmoid(lo + u), 0.0, hi - lo, order=2
            )
            self.coefficients.append(
                [
                    float(quantize_float(c, _COEFF_FMT)) * _COEFF_FMT.resolution
                    for c in coeffs
                ]
            )
        self._table = np.array(self.coefficients)

    @property
    def n_entries(self) -> int:
        return len(self.coefficients)

    def _eval_positive(self, magnitude: np.ndarray) -> np.ndarray:
        clamped = np.clip(magnitude, 0.0, _X_RANGE - 1e-12)
        idx = np.clip(
            np.searchsorted(self.edges, clamped, side="right") - 1,
            0,
            len(self.coefficients) - 1,
        )
        coeffs = self._table[idx]
        offset = clamped - self.edges[idx]
        return coeffs[:, 0] + coeffs[:, 1] * offset + coeffs[:, 2] * offset ** 2


register_baseline("finker_pwl", FinkerPwlSigmoid)
register_baseline("finker_taylor2", FinkerTaylor2Sigmoid)
