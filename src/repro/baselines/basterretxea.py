"""[7] Basterretxea et al., IEEE TNN 2007 — recursive PWL sigmoid.

The design refines a piecewise-linear sigmoid by recursive subdivision:
each refinement level splits the worst-approximated segments, so the
number of segments "is progressively dimensioned to achieve the desired
level of accuracy" (Section VI).
"""

from __future__ import annotations

import numpy as np

from repro.approx.minimax import fit_linear
from repro.approx.segments import Segment, SegmentTable
from repro.baselines.base import register_baseline
from repro.baselines.symmetric import SymmetricHalfRangeModel
from repro.fixedpoint import QFormat
from repro.funcs import sigmoid

_X_RANGE = 8.0
_OUT_FMT = QFormat(0, 15, signed=False)


class BasterretxeaRecursiveSigmoid(SymmetricHalfRangeModel):
    """Recursive-subdivision PWL with a configurable depth ``q``."""

    name = "Basterretxea recursive PWL [7]"
    function = "sigmoid"
    info_key = "basterretxea"
    word_bits = 32

    def __init__(self, depth: int = 3):
        super().__init__(_OUT_FMT)
        self.depth = depth
        segments = [self._fit(0.0, _X_RANGE)]
        for _ in range(depth):
            # One refinement level: split the half of the segments that
            # currently approximate worst.
            errors = self._segment_errors(segments)
            threshold = float(np.median(errors))
            refined = []
            for seg, err in zip(segments, errors):
                if err >= threshold and err > 0:
                    mid = (seg.x_lo + seg.x_hi) / 2.0
                    refined.append(self._fit(seg.x_lo, mid))
                    refined.append(self._fit(mid, seg.x_hi))
                else:
                    refined.append(seg)
            segments = refined
        self.table = SegmentTable(segments)

    @staticmethod
    def _fit(lo: float, hi: float) -> Segment:
        fit = fit_linear(sigmoid, lo, hi)
        return Segment(lo, hi, fit.slope, fit.intercept)

    @staticmethod
    def _segment_errors(segments) -> np.ndarray:
        """Max PWL error per segment, all segments in one vectorised pass.

        The per-segment 65-point grids stack into one (n_segments, 65)
        array; row maxima are the per-segment errors the scalar loop
        produced one at a time.
        """
        lo = np.array([s.x_lo for s in segments])
        hi = np.array([s.x_hi for s in segments])
        slope = np.array([s.slope for s in segments])[:, np.newaxis]
        intercept = np.array([s.intercept for s in segments])[:, np.newaxis]
        grids = np.linspace(lo, hi, 65, axis=-1)
        return np.max(np.abs(sigmoid(grids) - (slope * grids + intercept)), axis=-1)

    @property
    def n_entries(self) -> int:
        return len(self.table)

    def _eval_positive(self, magnitude: np.ndarray) -> np.ndarray:
        return self.table.eval(magnitude)


register_baseline("basterretxea", BasterretxeaRecursiveSigmoid)
