"""Half-range evaluation helper shared by the baseline models.

Like NACU, almost every published design stores only the positive input
range and reconstructs the negative one through the centrosymmetry of the
sigmoid (Eq. 4) or the oddness of tanh (Eq. 5).
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.approx.lut import quantise_output
from repro.baselines.base import BaselineApproximator
from repro.errors import ConfigError
from repro.fixedpoint import QFormat


class SymmetricHalfRangeModel(BaselineApproximator):
    """A baseline that evaluates ``f(|x|)`` and mirrors the negative side.

    Subclasses implement :meth:`_eval_positive` on magnitudes and set
    ``function`` to ``"sigmoid"`` (mirror ``1 - f``) or ``"tanh"``
    (mirror ``-f``). ``out_fmt`` models the design's output register.
    """

    def __init__(self, out_fmt: Optional[QFormat]):
        self.out_fmt = out_fmt

    @abc.abstractmethod
    def _eval_positive(self, magnitude: np.ndarray) -> np.ndarray:
        """Approximate the function for ``magnitude >= 0``."""

    def eval(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        flat = np.atleast_1d(x).ravel()
        # Quantise the half-range magnitude first: the designs store an
        # unsigned magnitude word and apply the sign/mirror afterwards, so
        # the output format must not see the mirrored (negative) values.
        positive = quantise_output(self._eval_positive(np.abs(flat)), self.out_fmt)
        if self.function == "sigmoid":
            mirrored = np.where(flat < 0, 1.0 - positive, positive)
        elif self.function == "tanh":
            mirrored = np.where(flat < 0, -positive, positive)
        else:
            raise ConfigError(
                f"symmetric evaluation undefined for function {self.function!r}"
            )
        return mirrored.reshape(x.shape)


def snap_to_power_of_two(value: float) -> float:
    """Round a coefficient to the nearest power of two (sign preserved).

    Several FPGA designs ([6], [9]) restrict PWL slopes to powers of two
    so the multiplier becomes a shifter; this models that restriction.
    """
    if value == 0.0:
        return 0.0
    magnitude = abs(value)
    exponent = round(np.log2(magnitude))
    return float(np.sign(value) * 2.0 ** exponent)
