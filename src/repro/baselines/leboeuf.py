"""[5] Leboeuf et al., ICCIT 2008 — 127-entry RALUT tanh at 10 bits."""

from __future__ import annotations

import math

import numpy as np

from repro.approx.ralut import RangeAddressableLUT
from repro.baselines.base import register_baseline
from repro.baselines.symmetric import SymmetricHalfRangeModel
from repro.fixedpoint import QFormat
from repro.funcs import tanh


class LeboeufRalutTanh(SymmetricHalfRangeModel):
    """Pure table-based tanh: 127 range-addressable entries, 10-bit words."""

    name = "Leboeuf RALUT [5]"
    function = "tanh"
    info_key = "leboeuf"

    #: 10-bit words: 8 fractional magnitude bits (plus sign and the
    #: saturated integer bit in the full design).
    OUT_FMT = QFormat(0, 8, signed=False)
    word_bits = 10 + 10

    def __init__(self, n_entries: int = 127):
        super().__init__(self.OUT_FMT)
        self.sat_edge = math.atanh(1.0 - self.OUT_FMT.resolution / 2.0)
        self.ralut = RangeAddressableLUT.for_entries(
            tanh, 0.0, self.sat_edge, n_entries, out_fmt=self.OUT_FMT,
            monotone=True,
        )

    @property
    def n_entries(self) -> int:
        return self.ralut.n_entries

    def _eval_positive(self, magnitude: np.ndarray) -> np.ndarray:
        return np.where(
            magnitude >= self.sat_edge,
            self.OUT_FMT.max_value,
            self.ralut.eval(magnitude),
        )


register_baseline("leboeuf", LeboeufRalutTanh)
