"""[13] Nilsson et al., NORCHIP 2014 — 6th-order Taylor exponential.

One 6th-order Taylor polynomial describes the whole curve (no input
partitioning), evaluated with 18-bit coefficients — which is why it
reaches ~10x better max error than the 16-bit NACU in Fig. 6c, at a much
longer clock period (Table I: 40.3 ns at 65 nm).
"""

from __future__ import annotations

import numpy as np

from repro.approx.polynomial import PolynomialApproximator, taylor_coefficients
from repro.baselines.base import BaselineApproximator, register_baseline
from repro.fixedpoint import QFormat


class NilssonTaylor6Exp(BaselineApproximator):
    """6th-order Taylor e^x on the normalised domain [-1, 0]."""

    name = "Nilsson Taylor-6 [13]"
    function = "exp"
    info_key = "nilsson"
    word_bits = 21  # 18 fractional bits plus integer/sign

    def __init__(self, order: int = 6, frac_bits: int = 18):
        coeff_fmt = QFormat(1, frac_bits)
        work_fmt = QFormat(2, frac_bits)
        # Expand around the domain midpoint to halve the truncation error.
        self.center = -0.5
        self.poly = PolynomialApproximator(
            taylor_coefficients("exp", order, around=self.center),
            coeff_fmt=coeff_fmt,
            work_fmt=work_fmt,
            out_fmt=QFormat(1, frac_bits),
        )

    @property
    def n_entries(self) -> int:
        return self.poly.n_entries

    def eval(self, x) -> np.ndarray:
        return self.poly.eval(np.asarray(x, dtype=np.float64) - self.center)


register_baseline("nilsson", NilssonTaylor6Exp)
