"""Uniform look-up table: constant output per uniform segment."""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.approx.base import Approximator
from repro.approx.minimax import fit_constant
from repro.approx.segments import Segment, SegmentTable
from repro.errors import ConfigError, ConvergenceError
from repro.fixedpoint import QFormat
from repro.fixedpoint.rounding import quantize_float

#: Per-segment fit sample count; segments are narrow so few samples suffice.
_FIT_SAMPLES = 33


def quantise_output(y: np.ndarray, fmt: Optional[QFormat]) -> np.ndarray:
    """Round ``y`` to what an ``fmt``-wide output register can hold."""
    if fmt is None:
        return np.asarray(y, dtype=np.float64)
    return quantize_float(y, fmt).astype(np.float64) * fmt.resolution


class UniformLUT(Approximator):
    """The classic LUT: address = top bits of x, data = one constant.

    Each entry stores the minimax constant of its segment (the midpoint of
    the function's range there), optionally quantised to ``out_fmt``.
    """

    name = "LUT"

    def __init__(
        self,
        f: Callable[[np.ndarray], np.ndarray],
        x_lo: float,
        x_hi: float,
        n_entries: int,
        out_fmt: Optional[QFormat] = None,
        monotone: bool = False,
    ):
        if n_entries < 1:
            raise ConfigError("a LUT needs at least one entry")
        self.f = f
        self.out_fmt = out_fmt
        edges = np.linspace(x_lo, x_hi, n_entries + 1)
        if monotone:
            # Monotone f: every per-segment grid min/max sits on the
            # segment edges, so all minimax constants come from one
            # vectorised evaluation — bit-identical to the fit loop.
            y = np.asarray(f(edges), dtype=np.float64)
            constants = (np.minimum(y[:-1], y[1:]) + np.maximum(y[:-1], y[1:])) / 2.0
            segments = [
                Segment(float(lo), float(hi), 0.0, float(const))
                for lo, hi, const in zip(edges[:-1], edges[1:], constants)
            ]
        else:
            segments = []
            for lo, hi in zip(edges[:-1], edges[1:]):
                const, _ = fit_constant(f, float(lo), float(hi), _FIT_SAMPLES)
                segments.append(Segment(float(lo), float(hi), 0.0, const))
        self.table = SegmentTable(segments)
        if out_fmt is not None:
            self.table = self.table.quantise_coefficients(None, out_fmt)
        self.word_bits = out_fmt.n_bits if out_fmt else 16

    @property
    def n_entries(self) -> int:
        return len(self.table)

    def eval(self, x) -> np.ndarray:
        return quantise_output(self.table.eval(x), self.out_fmt)

    @classmethod
    def for_accuracy(
        cls,
        f: Callable[[np.ndarray], np.ndarray],
        x_lo: float,
        x_hi: float,
        target_error: float,
        out_fmt: Optional[QFormat] = None,
        reference: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        max_entries: int = 1 << 16,
        monotone: bool = False,
    ) -> "UniformLUT":
        """Smallest uniform LUT whose max error is below ``target_error``."""
        reference = reference or f
        probe = np.linspace(x_lo, x_hi, 8193)
        ref = np.asarray(reference(probe), dtype=np.float64)

        def error(n: int) -> float:
            lut = cls(f, x_lo, x_hi, n, out_fmt, monotone=monotone)
            return float(np.max(np.abs(lut.eval(probe) - ref)))

        n = 1
        while error(n) > target_error:
            n *= 2
            if n > max_entries:
                raise ConvergenceError(
                    f"no uniform LUT below {max_entries} entries reaches "
                    f"max error {target_error:g}"
                )
        lo, hi = n // 2, n  # error(hi) <= target < error(lo)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if error(mid) <= target_error:
                hi = mid
            else:
                lo = mid
        return cls(f, x_lo, x_hi, hi, out_fmt, monotone=monotone)
