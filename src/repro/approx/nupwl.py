"""Non-uniform piecewise-linear (NUPWL) approximation.

Greedy maximal segmentation with per-segment minimax lines — the most
accurate of the four Section VI families per entry, at the cost of a
range-addressable (priority-encoder) lookup.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.approx.base import Approximator
from repro.approx.lut import quantise_output
from repro.approx.minimax import fit_linear
from repro.approx.ralut import SegmentBudgetExceeded, _greedy_segments
from repro.approx.segments import SegmentTable
from repro.errors import ConvergenceError
from repro.fixedpoint import QFormat


class NonUniformPWL(Approximator):
    """A NUPWL built greedily for a target max error."""

    name = "NUPWL"

    def __init__(
        self,
        f: Callable[[np.ndarray], np.ndarray],
        x_lo: float,
        x_hi: float,
        target_error: float,
        slope_fmt: Optional[QFormat] = None,
        intercept_fmt: Optional[QFormat] = None,
        out_fmt: Optional[QFormat] = None,
        max_segments: int = 1 << 16,
    ):
        self.f = f
        self.out_fmt = out_fmt
        self.target_error = target_error
        segments = _greedy_segments(f, x_lo, x_hi, target_error, fit=fit_linear,
                                    max_segments=max_segments)
        self.table = SegmentTable(segments).quantise_coefficients(
            slope_fmt, intercept_fmt
        )
        slope_bits = slope_fmt.n_bits if slope_fmt else 16
        intercept_bits = intercept_fmt.n_bits if intercept_fmt else 16
        self.word_bits = slope_bits + intercept_bits + 16  # + range bound

    @property
    def n_entries(self) -> int:
        return len(self.table)

    def eval(self, x) -> np.ndarray:
        return quantise_output(self.table.eval(x), self.out_fmt)

    @classmethod
    def for_entries(
        cls,
        f: Callable[[np.ndarray], np.ndarray],
        x_lo: float,
        x_hi: float,
        n_entries: int,
        **formats,
    ) -> "NonUniformPWL":
        """Best NUPWL with (at most) ``n_entries`` — bisect the error target."""
        lo_err, hi_err = 1e-12, 1.0
        best = None
        for _ in range(25):
            mid = (lo_err * hi_err) ** 0.5
            try:
                # Abort over-budget targets at n_entries + 1 segments; the
                # accept/reject decisions match building the full table.
                nupwl = cls(f, x_lo, x_hi, mid, max_segments=n_entries,
                            **formats)
            except SegmentBudgetExceeded:
                lo_err = mid
                continue
            if nupwl.n_entries <= n_entries:
                best = nupwl
                hi_err = mid
                if nupwl.n_entries == n_entries:
                    break  # hit the budget exactly: good enough
            else:
                lo_err = mid
        if best is None:
            raise ConvergenceError(
                f"no NUPWL with <= {n_entries} entries found on [{x_lo}, {x_hi}]"
            )
        return best
