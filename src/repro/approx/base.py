"""Common interface for all function approximators.

Both the Section VI survey engines (:mod:`repro.approx`) and the
related-work baselines (:mod:`repro.baselines`) speak this interface, so
the accuracy benches treat them uniformly.
"""

from __future__ import annotations

import abc

import numpy as np


class Approximator(abc.ABC):
    """A scalar function approximated by some hardware-friendly scheme.

    ``eval`` takes and returns float64, but implementations are expected to
    round through their internal fixed-point formats so the returned values
    are exactly what the modelled hardware would output.
    """

    #: Short human-readable scheme name ("LUT", "PWL", ...).
    name: str = "approximator"

    @abc.abstractmethod
    def eval(self, x) -> np.ndarray:
        """Approximate the target function at ``x`` (array-like)."""

    @property
    @abc.abstractmethod
    def n_entries(self) -> int:
        """Number of stored table entries (the paper's cost axis)."""

    @property
    def storage_bits(self) -> int:
        """Total table storage in bits; default assumes one word per entry."""
        return self.n_entries * self.word_bits

    #: Width of one stored word; subclasses override when entries hold
    #: several fields (e.g. PWL stores slope + intercept).
    word_bits: int = 16

    def __call__(self, x) -> np.ndarray:
        return self.eval(x)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}: {self.n_entries} entries>"
