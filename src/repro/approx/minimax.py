"""Minimax (Chebyshev) constant and linear fits on an interval.

These are the fitting primitives every segment-based engine uses. Fits are
computed on a dense sample grid; for the smooth, monotone activation
functions of the paper this converges to the true minimax fit as the grid
refines, and the residual the fitter reports is exact *on the grid the
accuracy benches reuse*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

DEFAULT_SAMPLES = 257


@dataclass(frozen=True)
class LinearFit:
    """A line ``y = slope * x + intercept`` with its max residual."""

    slope: float
    intercept: float
    max_error: float

    def eval(self, x) -> np.ndarray:
        """Evaluate the fitted line."""
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept


def sample_interval(x_lo: float, x_hi: float, n_samples: int = DEFAULT_SAMPLES) -> np.ndarray:
    """Dense closed-interval sample grid used by all fitters."""
    return np.linspace(x_lo, x_hi, n_samples)


def fit_constant(
    f: Callable[[np.ndarray], np.ndarray],
    x_lo: float,
    x_hi: float,
    n_samples: int = DEFAULT_SAMPLES,
) -> Tuple[float, float]:
    """Best constant approximation of ``f`` on ``[x_lo, x_hi]``.

    Returns ``(constant, max_error)``. The minimax constant is the midpoint
    of the function's range on the interval.
    """
    y = np.asarray(f(sample_interval(x_lo, x_hi, n_samples)), dtype=np.float64)
    lo, hi = float(np.min(y)), float(np.max(y))
    return (lo + hi) / 2.0, (hi - lo) / 2.0


def fit_constant_monotone(
    f: Callable[[np.ndarray], np.ndarray],
    x_lo: float,
    x_hi: float,
    n_samples: int = DEFAULT_SAMPLES,
) -> Tuple[float, float]:
    """:func:`fit_constant` for a monotone ``f`` — endpoint evaluation only.

    On a monotone interval the sample grid's min and max are the endpoint
    values, and :func:`sample_interval` includes both endpoints exactly, so
    this returns bit-identical ``(constant, max_error)`` to the grid fit
    while evaluating ``f`` at two points instead of ``n_samples``.
    """
    y = np.asarray(f(np.array([x_lo, x_hi])), dtype=np.float64)
    lo, hi = float(np.min(y)), float(np.max(y))
    return (lo + hi) / 2.0, (hi - lo) / 2.0


def _best_intercept(x: np.ndarray, y: np.ndarray, slope: float) -> Tuple[float, float]:
    """Optimal intercept (and max residual) for a fixed slope."""
    residual = y - slope * x
    lo, hi = float(np.min(residual)), float(np.max(residual))
    return (lo + hi) / 2.0, (hi - lo) / 2.0


def fit_linear(
    f: Callable[[np.ndarray], np.ndarray],
    x_lo: float,
    x_hi: float,
    n_samples: int = DEFAULT_SAMPLES,
) -> LinearFit:
    """Minimax linear fit of ``f`` on ``[x_lo, x_hi]``.

    The max residual, as a function of the slope (with the intercept chosen
    optimally), is convex — a max of affine functions — so a ternary search
    over the slope finds the global optimum.
    """
    x = sample_interval(x_lo, x_hi, n_samples)
    y = np.asarray(f(x), dtype=np.float64)
    if x_hi <= x_lo:
        const, err = _best_intercept(x, y, 0.0)
        return LinearFit(0.0, const, err)

    secant = (y[-1] - y[0]) / (x[-1] - x[0])
    # Bracket generously around the secant slope; for convex/concave f the
    # optimum *is* the secant, for general f it stays nearby.
    span = max(abs(secant), 1.0)
    lo_m, hi_m = secant - 2.0 * span, secant + 2.0 * span
    ms = np.empty((2, 1))
    for _ in range(56):
        ms[0, 0] = lo_m + (hi_m - lo_m) / 3.0
        ms[1, 0] = hi_m - (hi_m - lo_m) / 3.0
        # Both candidate slopes in one broadcast: each row is elementwise
        # y - m * x, so the residual extrema (and the <= decision) are
        # bit-identical to two scalar _best_intercept calls.
        r = y - ms * x
        e = (np.max(r, axis=1) - np.min(r, axis=1)) / 2.0
        if e[0] <= e[1]:
            hi_m = ms[1, 0]
        else:
            lo_m = ms[0, 0]
    slope = (lo_m + hi_m) / 2.0
    intercept, err = _best_intercept(x, y, slope)
    return LinearFit(slope, intercept, err)


def max_abs_error(
    f: Callable[[np.ndarray], np.ndarray],
    approx: Callable[[np.ndarray], np.ndarray],
    x_lo: float,
    x_hi: float,
    n_samples: int = 4097,
) -> float:
    """Max |f - approx| on a dense grid over the interval."""
    x = sample_interval(x_lo, x_hi, n_samples)
    return float(np.max(np.abs(np.asarray(f(x)) - np.asarray(approx(x)))))
