"""Range-addressable LUT (RALUT): constant output per *non-uniform* segment.

Non-uniform segments let flat regions of the function (the sigmoid's
saturation tail) be covered by one wide entry, which is why the paper's
Fig. 4 shows RALUT needing fewer entries than a plain LUT for the same
accuracy.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.approx.base import Approximator
from repro.approx.lut import quantise_output
from repro.approx.minimax import fit_constant, fit_constant_monotone
from repro.approx.segments import Segment, SegmentTable
from repro.errors import ConvergenceError
from repro.fixedpoint import QFormat

_FIT_SAMPLES = 65


def _error_of(fitted) -> float:
    """Max error of a fit result (tuple from fit_constant or LinearFit)."""
    return fitted[1] if isinstance(fitted, tuple) else fitted.max_error


class SegmentBudgetExceeded(ConvergenceError):
    """Greedy segmentation passed its segment budget (caller may retry)."""


def _greedy_segments(
    f: Callable[[np.ndarray], np.ndarray],
    x_lo: float,
    x_hi: float,
    target_error: float,
    fit=fit_constant,
    monotone: bool = False,
    max_segments: int = 1 << 16,
) -> list:
    """Greedily grow maximal segments whose fit error stays under target.

    For each segment start, the end is pushed as far as possible with an
    exponential probe followed by bisection; the fit-error-vs-width curve
    is monotone for the paper's monotone activation functions.

    ``monotone=True`` declares ``f`` monotone on the domain, switching the
    constant fits to endpoint-only evaluation (bit-identical: on a
    monotone interval the dense grid's min/max are the endpoint values).
    The probe then caches ``f`` at the fixed segment start, so each
    candidate end costs one function sample instead of a dense grid —
    these probe loops are what made cold baseline construction
    minutes-slow.

    ``max_segments`` aborts with :class:`SegmentBudgetExceeded` as soon as
    the table grows past the budget; entry-budgeted searches reject
    over-budget targets without paying for the full (possibly huge) table.
    """
    monotone_const = monotone and fit is fit_constant
    if monotone_const:
        fit = fit_constant_monotone
    segments = []
    lo = x_lo
    min_width = (x_hi - x_lo) * 1e-6
    while lo < x_hi - min_width / 2:
        if monotone_const:
            f_lo = float(np.asarray(f(np.array([lo])), dtype=np.float64)[0])

            def err(end, _f_lo=f_lo, _lo=lo):
                # == _error_of(fit_constant_monotone(f, _lo, end)): the
                # grid max-min equals |f(end) - f(lo)| for monotone f.
                f_end = float(np.asarray(f(np.array([end])), dtype=np.float64)[0])
                return abs(f_end - _f_lo) / 2.0
        else:
            def err(end, _lo=lo):
                return _error_of(fit(f, _lo, end, _FIT_SAMPLES))

        # Exponential probe for an upper bracket on the segment end.
        width = min_width
        while lo + width < x_hi and err(lo + width) <= target_error:
            width *= 2.0
        hi_end = min(lo + width, x_hi)
        if err(hi_end) <= target_error:
            end = hi_end  # reached the domain edge within budget
        else:
            lo_end = lo + width / 2.0
            for _ in range(50):
                mid = (lo_end + hi_end) / 2.0
                if err(mid) <= target_error:
                    lo_end = mid
                else:
                    hi_end = mid
            end = lo_end
        end = max(end, lo + min_width)
        fitted = fit(f, lo, end, _FIT_SAMPLES)
        if isinstance(fitted, tuple):  # constant fit: (value, max_error)
            segments.append(Segment(lo, end, 0.0, fitted[0]))
        else:
            segments.append(Segment(lo, end, fitted.slope, fitted.intercept))
        lo = end
        if len(segments) > max_segments:
            raise SegmentBudgetExceeded(
                f"greedy segmentation exceeded {max_segments} segments for "
                f"target error {target_error:g}"
            )
    # Snap the last edge exactly onto the domain boundary.
    last = segments[-1]
    segments[-1] = Segment(last.x_lo, x_hi, last.slope, last.intercept)
    return segments


class RangeAddressableLUT(Approximator):
    """A RALUT built greedily for a target max error."""

    name = "RALUT"

    def __init__(
        self,
        f: Callable[[np.ndarray], np.ndarray],
        x_lo: float,
        x_hi: float,
        target_error: float,
        out_fmt: Optional[QFormat] = None,
        monotone: bool = False,
        max_segments: int = 1 << 16,
    ):
        self.f = f
        self.out_fmt = out_fmt
        self.target_error = target_error
        self.table = SegmentTable(
            _greedy_segments(
                f, x_lo, x_hi, target_error,
                monotone=monotone, max_segments=max_segments,
            )
        )
        if out_fmt is not None:
            self.table = self.table.quantise_coefficients(None, out_fmt)
        self.word_bits = (out_fmt.n_bits if out_fmt else 16) + 16  # data + bound

    @property
    def n_entries(self) -> int:
        return len(self.table)

    def eval(self, x) -> np.ndarray:
        return quantise_output(self.table.eval(x), self.out_fmt)

    @classmethod
    def for_entries(
        cls,
        f: Callable[[np.ndarray], np.ndarray],
        x_lo: float,
        x_hi: float,
        n_entries: int,
        out_fmt: Optional[QFormat] = None,
        monotone: bool = False,
    ) -> "RangeAddressableLUT":
        """Best RALUT with (at most) ``n_entries`` — bisect the error target."""
        lo_err, hi_err = 1e-9, 1.0
        best = None
        for _ in range(25):
            mid = (lo_err * hi_err) ** 0.5  # geometric bisection
            try:
                # Over-budget targets abort as soon as the table passes
                # n_entries — same accept/reject decisions as building the
                # full table, without paying for the rejected ones.
                ralut = cls(f, x_lo, x_hi, mid, out_fmt, monotone=monotone,
                            max_segments=n_entries)
            except SegmentBudgetExceeded:
                lo_err = mid
                continue
            if ralut.n_entries <= n_entries:
                best = ralut
                hi_err = mid
                if ralut.n_entries == n_entries:
                    break  # hit the budget exactly: good enough
            else:
                lo_err = mid
        if best is None:
            raise ConvergenceError(
                f"no RALUT with <= {n_entries} entries found on [{x_lo}, {x_hi}]"
            )
        return best
