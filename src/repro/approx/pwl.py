"""Uniform piecewise-linear (PWL) approximation — NACU's own family.

Each uniform segment stores a minimax line (slope ``m1`` and intercept
``q`` in the paper's Eq. 8 notation). Coefficient quantisation to LUT word
formats is part of the model, because it is what limits PWL accuracy at
high fractional widths in Fig. 4.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.approx.base import Approximator
from repro.approx.lut import quantise_output
from repro.approx.minimax import fit_linear
from repro.approx.segments import Segment, SegmentTable
from repro.errors import ConfigError, ConvergenceError
from repro.fixedpoint import QFormat

_FIT_SAMPLES = 129


class UniformPWL(Approximator):
    """Uniform-segment PWL with per-segment minimax lines."""

    name = "PWL"

    def __init__(
        self,
        f: Callable[[np.ndarray], np.ndarray],
        x_lo: float,
        x_hi: float,
        n_entries: int,
        slope_fmt: Optional[QFormat] = None,
        intercept_fmt: Optional[QFormat] = None,
        out_fmt: Optional[QFormat] = None,
    ):
        if n_entries < 1:
            raise ConfigError("a PWL table needs at least one segment")
        self.f = f
        self.out_fmt = out_fmt
        edges = np.linspace(x_lo, x_hi, n_entries + 1)
        segments = []
        for lo, hi in zip(edges[:-1], edges[1:]):
            fit = fit_linear(f, float(lo), float(hi), _FIT_SAMPLES)
            segments.append(Segment(float(lo), float(hi), fit.slope, fit.intercept))
        self.table = SegmentTable(segments).quantise_coefficients(
            slope_fmt, intercept_fmt
        )
        slope_bits = slope_fmt.n_bits if slope_fmt else 16
        intercept_bits = intercept_fmt.n_bits if intercept_fmt else 16
        self.word_bits = slope_bits + intercept_bits

    @property
    def n_entries(self) -> int:
        return len(self.table)

    def eval(self, x) -> np.ndarray:
        return quantise_output(self.table.eval(x), self.out_fmt)

    @classmethod
    def for_accuracy(
        cls,
        f: Callable[[np.ndarray], np.ndarray],
        x_lo: float,
        x_hi: float,
        target_error: float,
        max_entries: int = 1 << 14,
        **formats,
    ) -> "UniformPWL":
        """Smallest uniform PWL with max error below ``target_error``."""
        probe = np.linspace(x_lo, x_hi, 8193)
        ref = np.asarray(f(probe), dtype=np.float64)

        def error(n: int) -> float:
            pwl = cls(f, x_lo, x_hi, n, **formats)
            return float(np.max(np.abs(pwl.eval(probe) - ref)))

        n = 1
        while error(n) > target_error:
            n *= 2
            if n > max_entries:
                raise ConvergenceError(
                    f"no uniform PWL below {max_entries} segments reaches "
                    f"max error {target_error:g} (coefficient quantisation "
                    f"may put the target out of reach)"
                )
        lo, hi = n // 2, n
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if error(mid) <= target_error:
                hi = mid
            else:
                lo = mid
        return cls(f, x_lo, x_hi, hi, **formats)
