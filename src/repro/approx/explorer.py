"""Design-space exploration reproducing Fig. 4 of the paper.

Fig. 4a asks: how many table entries does each scheme (LUT, RALUT, PWL,
NUPWL) need so that the sigmoid's max error stays below one output LSB
(``2^-f_b``), as the fractional width grows? Fig. 4b fixes 11 fractional
bits and sweeps the entry count instead, showing how max error scales.

The paper notes that "all possible interval sizes, ranges and fixed-point
formats were explored, and the one with the best accuracy was selected";
here the covered range is derived from the saturation analysis of Section
III (the smallest power-of-two beyond ``ln(2) * f_b``), which is where
that exploration lands for the sigmoid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

import numpy as np

from repro.approx.lut import UniformLUT
from repro.approx.nupwl import NonUniformPWL
from repro.approx.pwl import UniformPWL
from repro.approx.ralut import RangeAddressableLUT
from repro.errors import ConfigError
from repro.funcs import sigmoid

METHODS = ("LUT", "RALUT", "PWL", "NUPWL")


@dataclass(frozen=True)
class DesignPoint:
    """One explored design: a scheme, its size, and its accuracy."""

    method: str
    frac_bits: int
    n_entries: int
    max_error: float

    @property
    def meets_target(self) -> bool:
        """Whether the max error is within one output LSB."""
        return self.max_error <= 2.0 ** -self.frac_bits


def sigmoid_saturation_domain(frac_bits: int) -> float:
    """Positive input range the table must cover for ``frac_bits`` accuracy.

    Beyond ``ln(2) * f_b`` the sigmoid is within one LSB of 1 (Eq. 7), so
    the table saturates there; rounded up to a power of two as an address
    decoder would.
    """
    x_sat = math.log(2.0) * frac_bits
    return float(2 ** math.ceil(math.log2(x_sat)))


def _measure(approx, f, x_hi: float, frac_bits: int) -> float:
    """Max error over the covered range plus the saturation tail."""
    probe = np.linspace(0.0, 1.5 * x_hi, 12289)
    return float(np.max(np.abs(approx.eval(probe) - np.asarray(f(probe)))))


def _build_for_accuracy(method: str, f, x_hi: float, target: float,
                        monotone: bool = False):
    if method == "LUT":
        return UniformLUT.for_accuracy(f, 0.0, x_hi, target, monotone=monotone)
    if method == "RALUT":
        return RangeAddressableLUT(f, 0.0, x_hi, target, monotone=monotone)
    if method == "PWL":
        return UniformPWL.for_accuracy(f, 0.0, x_hi, target)
    if method == "NUPWL":
        return NonUniformPWL(f, 0.0, x_hi, target)
    raise ConfigError(f"unknown exploration method {method!r}; use one of {METHODS}")


def _build_for_entries(method: str, f, x_hi: float, n_entries: int,
                       monotone: bool = False):
    if method == "LUT":
        return UniformLUT(f, 0.0, x_hi, n_entries, monotone=monotone)
    if method == "RALUT":
        return RangeAddressableLUT.for_entries(
            f, 0.0, x_hi, n_entries, monotone=monotone
        )
    if method == "PWL":
        return UniformPWL(f, 0.0, x_hi, n_entries)
    if method == "NUPWL":
        return NonUniformPWL.for_entries(f, 0.0, x_hi, n_entries)
    raise ConfigError(f"unknown exploration method {method!r}; use one of {METHODS}")


def entries_for_accuracy(
    method: str,
    frac_bits: int,
    f: Optional[Callable] = None,
) -> DesignPoint:
    """Fig. 4a point: minimal entries reaching one-LSB accuracy."""
    monotone = f is None  # the default sigmoid is monotone on [0, x_hi]
    f = f or sigmoid
    x_hi = sigmoid_saturation_domain(frac_bits)
    # Greedy schemes overshoot slightly at segment joints; aim a little
    # below one LSB so the *measured* error (incl. the tail) meets it.
    target = 2.0 ** -frac_bits * 0.95
    approx = _build_for_accuracy(method, f, x_hi, target, monotone=monotone)
    return DesignPoint(method, frac_bits, approx.n_entries, _measure(approx, f, x_hi, frac_bits))


def error_for_entries(
    method: str,
    n_entries: int,
    frac_bits: int = 11,
    f: Optional[Callable] = None,
) -> DesignPoint:
    """Fig. 4b point: best max error achievable with a given entry count."""
    monotone = f is None  # the default sigmoid is monotone on [0, x_hi]
    f = f or sigmoid
    x_hi = sigmoid_saturation_domain(frac_bits)
    approx = _build_for_entries(method, f, x_hi, n_entries, monotone=monotone)
    return DesignPoint(method, frac_bits, approx.n_entries, _measure(approx, f, x_hi, frac_bits))


def explore_entries_vs_fracbits(
    methods: Iterable[str] = METHODS,
    frac_bits: Iterable[int] = range(4, 15),
) -> List[DesignPoint]:
    """The full Fig. 4a sweep."""
    return [entries_for_accuracy(m, fb) for m in methods for fb in frac_bits]


def explore_error_vs_entries(
    methods: Iterable[str] = METHODS,
    entries: Iterable[int] = (4, 8, 16, 32, 64, 128, 256, 512, 1024),
    frac_bits: int = 11,
) -> List[DesignPoint]:
    """The full Fig. 4b sweep (11 fractional bits, as in the paper)."""
    return [error_for_entries(m, n, frac_bits) for m in methods for n in entries]
