"""Interpolated LUT: stored samples with linear interpolation between.

A fifth table family beyond the paper's four: store function *values* at
uniform grid points and interpolate linearly between neighbours. It is a
PWL whose segments are forced continuous (slope = value difference), so
one value word per entry suffices — half the storage of a free PWL —
at the cost of roughly double the approximation error
(interpolation errs by `max|f''| w^2/8` vs minimax's `/16`).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.approx.base import Approximator
from repro.approx.lut import quantise_output
from repro.errors import ConfigError
from repro.fixedpoint import QFormat
from repro.fixedpoint.rounding import quantize_float


class InterpolatedLUT(Approximator):
    """Uniform sample grid with linear interpolation."""

    name = "ILUT"

    def __init__(
        self,
        f: Callable[[np.ndarray], np.ndarray],
        x_lo: float,
        x_hi: float,
        n_entries: int,
        value_fmt: Optional[QFormat] = None,
        out_fmt: Optional[QFormat] = None,
    ):
        if n_entries < 2:
            raise ConfigError("interpolation needs at least two samples")
        self.x_lo, self.x_hi = float(x_lo), float(x_hi)
        self.out_fmt = out_fmt
        self.grid = np.linspace(x_lo, x_hi, n_entries)
        values = np.asarray(f(self.grid), dtype=np.float64)
        if value_fmt is not None:
            values = (
                quantize_float(values, value_fmt).astype(np.float64)
                * value_fmt.resolution
            )
        self.values = values
        self.word_bits = value_fmt.n_bits if value_fmt else 16

    @property
    def n_entries(self) -> int:
        return len(self.values)

    @property
    def step(self) -> float:
        """Grid spacing."""
        return (self.x_hi - self.x_lo) / (len(self.values) - 1)

    def eval(self, x) -> np.ndarray:
        x = np.clip(np.asarray(x, dtype=np.float64), self.x_lo, self.x_hi)
        position = (x - self.x_lo) / self.step
        idx = np.minimum(position.astype(np.int64), len(self.values) - 2)
        frac = position - idx
        lo = self.values[idx]
        hi = self.values[idx + 1]
        return quantise_output(lo + (hi - lo) * frac, self.out_fmt)
