"""Segment tables: the shared data structure of every table-based engine.

A :class:`SegmentTable` holds ordered, contiguous segments; each segment
carries a line (slope + intercept; constant segments have slope zero).
Coefficients can optionally be quantised to fixed-point formats so the
table models real LUT words instead of ideal reals.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.fixedpoint import QFormat
from repro.fixedpoint.rounding import Rounding, quantize_float


@dataclass(frozen=True)
class Segment:
    """One segment ``[x_lo, x_hi)`` approximated by ``slope*x + intercept``."""

    x_lo: float
    x_hi: float
    slope: float
    intercept: float

    def eval(self, x) -> np.ndarray:
        """Evaluate the segment's line (no domain check)."""
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept

    @property
    def width(self) -> float:
        """Segment width."""
        return self.x_hi - self.x_lo


class SegmentTable:
    """An ordered, contiguous list of segments over ``[x_lo, x_hi)``.

    Lookups outside the covered range clamp to the first/last segment,
    modelling hardware saturation of the address.
    """

    def __init__(self, segments: Sequence[Segment]):
        if not segments:
            raise ConfigError("a segment table needs at least one segment")
        for prev, cur in zip(segments, segments[1:]):
            if not np.isclose(prev.x_hi, cur.x_lo):
                raise ConfigError(
                    f"segments are not contiguous: [{prev.x_lo}, {prev.x_hi}) "
                    f"then [{cur.x_lo}, {cur.x_hi})"
                )
        self.segments: List[Segment] = list(segments)
        self._edges = np.array([s.x_lo for s in segments] + [segments[-1].x_hi])
        # Coefficient vectors, materialised once: eval() is called per
        # batch (and, during table construction, per candidate fit), so
        # rebuilding these per call would dominate the lookup cost.
        self._slopes = np.array([s.slope for s in segments])
        self._intercepts = np.array([s.intercept for s in segments])

    @property
    def x_lo(self) -> float:
        """Lower edge of the covered range."""
        return float(self._edges[0])

    @property
    def x_hi(self) -> float:
        """Upper edge of the covered range."""
        return float(self._edges[-1])

    def __len__(self) -> int:
        return len(self.segments)

    def index_of(self, x) -> np.ndarray:
        """Segment index for each ``x`` (clamped at the range edges)."""
        x = np.asarray(x, dtype=np.float64)
        idx = np.searchsorted(self._edges, x, side="right") - 1
        return np.clip(idx, 0, len(self.segments) - 1)

    def eval(self, x) -> np.ndarray:
        """Evaluate the piecewise function at ``x``.

        Inputs outside the covered range are clamped first, modelling the
        input/address saturation real table hardware applies.
        """
        x = np.clip(np.asarray(x, dtype=np.float64), self.x_lo, self.x_hi)
        idx = self.index_of(x)
        return self._slopes[idx] * x + self._intercepts[idx]

    def quantise_coefficients(
        self,
        slope_fmt: Optional[QFormat],
        intercept_fmt: Optional[QFormat],
        rounding: Rounding = Rounding.NEAREST_EVEN,
    ) -> "SegmentTable":
        """Return a copy whose coefficients are representable LUT words."""
        new_segments = []
        for seg in self.segments:
            slope = seg.slope
            intercept = seg.intercept
            if slope_fmt is not None:
                slope = float(quantize_float(slope, slope_fmt)) * slope_fmt.resolution
            if intercept_fmt is not None:
                intercept = (
                    float(quantize_float(intercept, intercept_fmt))
                    * intercept_fmt.resolution
                )
            new_segments.append(replace(seg, slope=slope, intercept=intercept))
        return SegmentTable(new_segments)

    def widths(self) -> np.ndarray:
        """Array of segment widths."""
        return np.diff(self._edges)
