"""Function-approximation engines (paper Section VI taxonomy).

The paper's related-work survey divides the landscape into four families,
all of which are implemented here so Fig. 4 can be regenerated:

* :class:`~repro.approx.lut.UniformLUT` — uniform segments, constant each.
* :class:`~repro.approx.ralut.RangeAddressableLUT` — non-uniform segments,
  constant each (RALUT).
* :class:`~repro.approx.pwl.UniformPWL` — uniform segments, minimax line
  each (the family NACU itself belongs to).
* :class:`~repro.approx.nupwl.NonUniformPWL` — non-uniform segments with
  minimax lines (NUPWL).
* :mod:`~repro.approx.polynomial` — single-segment higher-order
  polynomials (Taylor / minimax), used by several related-work baselines.
"""

from repro.approx.base import Approximator
from repro.approx.segments import Segment, SegmentTable
from repro.approx.lut import UniformLUT
from repro.approx.ralut import RangeAddressableLUT
from repro.approx.pwl import UniformPWL
from repro.approx.nupwl import NonUniformPWL
from repro.approx.interpolated import InterpolatedLUT
from repro.approx.polynomial import PolynomialApproximator, taylor_coefficients
from repro.approx.explorer import (
    DesignPoint,
    entries_for_accuracy,
    error_for_entries,
    explore_entries_vs_fracbits,
    explore_error_vs_entries,
)

__all__ = [
    "Approximator",
    "DesignPoint",
    "InterpolatedLUT",
    "NonUniformPWL",
    "PolynomialApproximator",
    "RangeAddressableLUT",
    "Segment",
    "SegmentTable",
    "UniformLUT",
    "UniformPWL",
    "entries_for_accuracy",
    "error_for_entries",
    "explore_entries_vs_fracbits",
    "explore_error_vs_entries",
    "taylor_coefficients",
]
