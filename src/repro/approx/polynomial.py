"""Single-segment polynomial approximation (Taylor and least-squares).

Several related-work designs treat the whole input range as one segment
approximated by a higher-order polynomial — 2nd-order Taylor for the
sigmoid [6, 10], 6th-order Taylor for the exponential [13]. This module
provides the coefficient generators and a fixed-point Horner evaluator.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

import numpy as np

from repro.approx.base import Approximator
from repro.approx.lut import quantise_output
from repro.errors import ConfigError
from repro.fixedpoint import QFormat
from repro.fixedpoint.rounding import quantize_float


def taylor_coefficients(func: str, order: int, around: float = 0.0) -> list:
    """Taylor coefficients (lowest order first) of a named function.

    Supported: ``"exp"``, ``"sigmoid"``, ``"tanh"``. Derivatives are taken
    analytically — exp is its own derivative; sigmoid/tanh derivatives are
    polynomials in the function value itself.
    """
    if order < 0:
        raise ConfigError("polynomial order must be non-negative")
    if func == "exp":
        base = math.exp(around)
        return [base / math.factorial(k) for k in range(order + 1)]
    if func == "sigmoid":
        s = 1.0 / (1.0 + math.exp(-around))
        derivs = _sigmoid_derivatives(s, order)
    elif func == "tanh":
        t = math.tanh(around)
        derivs = _tanh_derivatives(t, order)
    else:
        raise ConfigError(f"unknown function {func!r} for Taylor expansion")
    return [d / math.factorial(k) for k, d in enumerate(derivs)]


def _sigmoid_derivatives(s: float, order: int) -> list:
    """Derivatives of sigma at a point, via d/dx = s(1-s) chain products.

    Represent each derivative as a polynomial in s and differentiate
    symbolically: if D = sum c_k s^k then D' = sum c_k k s^(k-1) * s(1-s).
    """
    poly = {1: 1.0}  # sigma itself = s
    derivs = [_poly_eval(poly, s)]
    for _ in range(order):
        new_poly: dict = {}
        for k, c in poly.items():
            if k == 0:
                continue
            # c*k*s^k - c*k*s^(k+1)
            new_poly[k] = new_poly.get(k, 0.0) + c * k
            new_poly[k + 1] = new_poly.get(k + 1, 0.0) - c * k
        poly = new_poly
        derivs.append(_poly_eval(poly, s))
    return derivs


def _tanh_derivatives(t: float, order: int) -> list:
    """Derivatives of tanh at a point, via d/dx = 1 - t^2."""
    poly = {1: 1.0}
    derivs = [_poly_eval(poly, t)]
    for _ in range(order):
        new_poly: dict = {}
        for k, c in poly.items():
            if k == 0:
                continue
            # derivative of c*t^k is c*k*t^(k-1)*(1 - t^2)
            new_poly[k - 1] = new_poly.get(k - 1, 0.0) + c * k
            new_poly[k + 1] = new_poly.get(k + 1, 0.0) - c * k
        poly = new_poly
        derivs.append(_poly_eval(poly, t))
    return derivs


def _poly_eval(poly: dict, x: float) -> float:
    return sum(c * x ** k for k, c in poly.items())


def least_squares_coefficients(
    f: Callable[[np.ndarray], np.ndarray],
    x_lo: float,
    x_hi: float,
    order: int,
    n_samples: int = 1025,
) -> list:
    """Least-squares polynomial fit on an interval (lowest order first)."""
    x = np.linspace(x_lo, x_hi, n_samples)
    coeffs = np.polynomial.polynomial.polyfit(x, np.asarray(f(x)), order)
    return [float(c) for c in coeffs]


class PolynomialApproximator(Approximator):
    """Evaluate a polynomial with Horner's rule through fixed-point rounding.

    Every intermediate of the Horner recurrence is rounded to ``work_fmt``,
    matching a datapath that feeds a single multiplier/adder pair back on
    itself, which is how [10] and [13] are organised.
    """

    name = "polynomial"

    def __init__(
        self,
        coefficients: Sequence[float],
        coeff_fmt: Optional[QFormat] = None,
        work_fmt: Optional[QFormat] = None,
        out_fmt: Optional[QFormat] = None,
    ):
        if len(coefficients) == 0:
            raise ConfigError("a polynomial needs at least one coefficient")
        self.coefficients = [float(c) for c in coefficients]
        if coeff_fmt is not None:
            self.coefficients = [
                float(quantize_float(c, coeff_fmt)) * coeff_fmt.resolution
                for c in self.coefficients
            ]
        self.coeff_fmt = coeff_fmt
        self.work_fmt = work_fmt
        self.out_fmt = out_fmt
        self.word_bits = coeff_fmt.n_bits if coeff_fmt else 16

    @property
    def order(self) -> int:
        """Polynomial degree."""
        return len(self.coefficients) - 1

    @property
    def n_entries(self) -> int:
        return len(self.coefficients)

    def eval(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        acc = np.full_like(x, self.coefficients[-1])
        for c in reversed(self.coefficients[:-1]):
            acc = quantise_output(acc * x + c, self.work_fmt)
        return quantise_output(acc, self.out_fmt)
