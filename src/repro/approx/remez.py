"""Remez exchange: true minimax polynomial fits.

The linear fitter in :mod:`repro.approx.minimax` is grid-based; for the
polynomial baselines ([13]'s Taylor-6, parabolic synthesis) a proper
equioscillating minimax fit is sometimes wanted. This is the standard
second Remez algorithm on a dense candidate grid: solve the linear system
forcing alternating error ``+-E`` on ``order + 2`` reference points, then
move the references to the new extrema until they stop moving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.errors import ConvergenceError


@dataclass(frozen=True)
class RemezFit:
    """A minimax polynomial (coefficients lowest order first)."""

    coefficients: List[float]
    max_error: float
    iterations: int

    def eval(self, x) -> np.ndarray:
        """Evaluate the fitted polynomial."""
        return np.polynomial.polynomial.polyval(
            np.asarray(x, dtype=np.float64), self.coefficients
        )


def remez_fit(
    f: Callable[[np.ndarray], np.ndarray],
    x_lo: float,
    x_hi: float,
    order: int,
    grid_points: int = 2049,
    max_iterations: int = 50,
    tolerance: float = 1e-13,
) -> RemezFit:
    """Minimax polynomial of a continuous function on ``[x_lo, x_hi]``."""
    if order < 0:
        raise ConvergenceError("polynomial order must be non-negative")
    grid = np.linspace(x_lo, x_hi, grid_points)
    values = np.asarray(f(grid), dtype=np.float64)
    # Chebyshev-node initial references.
    k = np.arange(order + 2)
    nodes = np.cos(np.pi * k / (order + 1))
    refs = np.clip(
        (x_lo + x_hi) / 2 + (x_hi - x_lo) / 2 * nodes[::-1], x_lo, x_hi
    )
    ref_idx = np.unique(np.searchsorted(grid, refs).clip(0, grid_points - 1))
    while len(ref_idx) < order + 2:  # de-duplicate collisions
        candidates = np.setdiff1d(np.arange(grid_points), ref_idx)
        ref_idx = np.sort(np.append(ref_idx, candidates[0]))

    coeffs = np.zeros(order + 1)
    error_level = 0.0
    for iteration in range(1, max_iterations + 1):
        x_ref = grid[ref_idx]
        y_ref = values[ref_idx]
        # Solve for coefficients and the levelled error E:
        #   p(x_i) + (-1)^i E = f(x_i)
        system = np.vander(x_ref, order + 1, increasing=True)
        signs = np.power(-1.0, np.arange(order + 2))[:, None]
        matrix = np.hstack([system, signs])
        solution = np.linalg.solve(matrix, y_ref)
        coeffs, error_level = solution[:-1], abs(solution[-1])
        # Find the extrema of the residual on the dense grid.
        residual = values - np.polynomial.polynomial.polyval(grid, coeffs)
        worst = float(np.max(np.abs(residual)))
        if worst - error_level <= tolerance:
            # Converged (covers the degenerate exact-polynomial case,
            # where the residual has no alternating extrema at all).
            return RemezFit([float(c) for c in coeffs], worst, iteration)
        new_idx = _local_extrema(residual, order + 2)
        if np.array_equal(new_idx, ref_idx):
            return RemezFit([float(c) for c in coeffs], worst, iteration)
        ref_idx = new_idx
    raise ConvergenceError(
        f"Remez exchange did not settle in {max_iterations} iterations"
    )


def _local_extrema(residual: np.ndarray, count: int) -> np.ndarray:
    """Indices of the ``count`` strongest alternating extrema."""
    # Candidate extrema: sign changes of the discrete derivative plus the
    # interval endpoints.
    derivative = np.diff(residual)
    turning = np.where(np.sign(derivative[:-1]) != np.sign(derivative[1:]))[0] + 1
    candidates = np.unique(np.concatenate([[0], turning, [len(residual) - 1]]))
    # Keep an alternating-sign subsequence, greedily preferring magnitude.
    chosen: List[int] = []
    for idx in candidates:
        if not chosen:
            chosen.append(int(idx))
            continue
        if np.sign(residual[idx]) == np.sign(residual[chosen[-1]]):
            if abs(residual[idx]) > abs(residual[chosen[-1]]):
                chosen[-1] = int(idx)
        else:
            chosen.append(int(idx))
    chosen_arr = np.array(chosen)
    if len(chosen_arr) > count:
        # Drop the weakest from whichever end keeps alternation.
        while len(chosen_arr) > count:
            if abs(residual[chosen_arr[0]]) <= abs(residual[chosen_arr[-1]]):
                chosen_arr = chosen_arr[1:]
            else:
                chosen_arr = chosen_arr[:-1]
    elif len(chosen_arr) < count:
        raise ConvergenceError(
            "residual has too few alternations; increase the grid density"
        )
    return chosen_arr
